/// Wire-protocol unit tests: roundtrip encode/decode for every message
/// type, incremental framing, and rejection of truncated, oversized,
/// trailing-garbage, and lying-length frames (the bounded-validation
/// guarantees a malformed peer can never make the decoder over-allocate).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace holix::net {
namespace {

/// Encodes message \p m, decodes it back through the framing layer, and
/// returns the re-decoded message (EXPECTing every step to succeed).
template <typename M>
M Roundtrip(const M& m, uint64_t request_id = 7) {
  const std::vector<uint8_t> bytes = EncodeMessage(request_id, m);
  Frame f;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed, &error),
            DecodeStatus::kFrame)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(f.request_id, request_id);
  EXPECT_EQ(f.type, M::kType);
  M out;
  EXPECT_TRUE(DecodeMessage(f, &out)) << MsgTypeName(M::kType);
  return out;
}

TEST(Protocol, RoundtripHandshake) {
  const Hello hello = Roundtrip(Hello{});
  EXPECT_EQ(hello.magic, kMagic);
  EXPECT_EQ(hello.version, kProtocolVersion);
  HelloAck ack;
  ack.version = 3;
  EXPECT_EQ(Roundtrip(ack).version, 3);
}

TEST(Protocol, RoundtripSessionMessages) {
  Roundtrip(OpenSessionReq{});
  OpenSessionAck ack;
  ack.session_id = 0xDEADBEEFCAFE;
  EXPECT_EQ(Roundtrip(ack).session_id, 0xDEADBEEFCAFEull);
  CloseSessionReq close;
  close.session_id = 42;
  EXPECT_EQ(Roundtrip(close).session_id, 42u);
  Roundtrip(CloseSessionAck{});
}

TEST(Protocol, RoundtripRangeRequests) {
  CountRangeReq count;
  count.session_id = 9;
  count.table = "r";
  count.column = "a0";
  count.low = -5;
  count.high = int64_t{1} << 40;
  const CountRangeReq c = Roundtrip(count);
  EXPECT_EQ(c.session_id, 9u);
  EXPECT_EQ(c.table, "r");
  EXPECT_EQ(c.column, "a0");
  EXPECT_EQ(c.low, -5);
  EXPECT_EQ(c.high, int64_t{1} << 40);

  SumRangeReq sum;
  sum.table = "t";
  sum.column = "x";
  sum.low = std::numeric_limits<int64_t>::min();
  sum.high = std::numeric_limits<int64_t>::max();
  const SumRangeReq s = Roundtrip(sum);
  EXPECT_EQ(s.low, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(s.high, std::numeric_limits<int64_t>::max());

  SelectRowIdsReq sel;
  sel.table = "r";
  sel.column = "a1";
  sel.low = 1;
  sel.high = 2;
  EXPECT_EQ(Roundtrip(sel).column, "a1");

  ProjectSumReq psum;
  psum.session_id = 3;
  psum.table = "r";
  psum.where_column = "w";
  psum.project_column = "p";
  psum.low = 10;
  psum.high = 20;
  const ProjectSumReq p = Roundtrip(psum);
  EXPECT_EQ(p.where_column, "w");
  EXPECT_EQ(p.project_column, "p");
}

TEST(Protocol, RoundtripResults) {
  CountResult count;
  count.count = 12345;
  EXPECT_EQ(Roundtrip(count).count, 12345u);
  SumResult sum;
  sum.sum = -99;
  EXPECT_EQ(Roundtrip(sum).sum, -99);
  ProjectSumResult psum;
  psum.sum = int64_t{1} << 50;
  EXPECT_EQ(Roundtrip(psum).sum, int64_t{1} << 50);
  RowIdsResult rows;
  rows.rowids = {1, 2, 3, 0xFFFFFFFFFFFFull};
  EXPECT_EQ(Roundtrip(rows).rowids, rows.rowids);
  RowIdsResult empty;
  EXPECT_TRUE(Roundtrip(empty).rowids.empty());
  InsertResult ins;
  ins.rowid = 77;
  EXPECT_EQ(Roundtrip(ins).rowid, 77u);
  DeleteResult del;
  del.found = true;
  EXPECT_TRUE(Roundtrip(del).found);
}

TEST(Protocol, RoundtripUpdatesAndError) {
  InsertReq ins;
  ins.session_id = 1;
  ins.table = "r";
  ins.column = "a";
  ins.value = -42;
  EXPECT_EQ(Roundtrip(ins).value, -42);
  DeleteReq del;
  del.session_id = 1;
  del.table = "r";
  del.column = "a";
  del.value = 7;
  EXPECT_EQ(Roundtrip(del).value, 7);
  ErrorMsg err;
  err.code = ErrorCode::kNoSuchColumn;
  err.message = "no column r.z";
  const ErrorMsg e = Roundtrip(err);
  EXPECT_EQ(e.code, ErrorCode::kNoSuchColumn);
  EXPECT_EQ(e.message, "no column r.z");
}

// --- Typed scalar frames (protocol v2) -----------------------------------

TEST(Protocol, RoundtripTypedScalars) {
  // f64 bounds survive bit-exactly, including the special keys.
  SumRangeReq sum;
  sum.session_id = 4;
  sum.table = "r";
  sum.column = "price";
  sum.low = KeyScalar::F64(0.25);
  sum.high = KeyScalar::F64(std::numeric_limits<double>::quiet_NaN());
  const SumRangeReq s = Roundtrip(sum);
  EXPECT_TRUE(s.low == KeyScalar::F64(0.25));
  EXPECT_TRUE(s.high.is_f64());
  EXPECT_TRUE(std::isnan(s.high.d));

  // Mixed carriers stay independent on the wire.
  CountRangeReq mixed;
  mixed.table = "r";
  mixed.column = "price";
  mixed.low = KeyScalar::I64(-7);
  mixed.high = KeyScalar::F64(1e18);
  const CountRangeReq m = Roundtrip(mixed);
  EXPECT_FALSE(m.low.is_f64());
  EXPECT_EQ(m.low.i, -7);
  EXPECT_TRUE(m.high == KeyScalar::F64(1e18));

  // f64 sum results: -0.0 and +inf keep their exact bit patterns.
  SumResult r;
  r.sum = KeyScalar::F64(-0.0);
  EXPECT_TRUE(Roundtrip(r).sum == KeyScalar::F64(-0.0));
  r.sum = KeyScalar::F64(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Roundtrip(r).sum ==
              KeyScalar::F64(std::numeric_limits<double>::infinity()));
  ProjectSumResult pr;
  pr.sum = KeyScalar::F64(1234.5625);
  EXPECT_TRUE(Roundtrip(pr).sum == KeyScalar::F64(1234.5625));

  // f64 update values.
  InsertReq ins;
  ins.session_id = 1;
  ins.table = "r";
  ins.column = "price";
  ins.value = KeyScalar::F64(2.5);
  EXPECT_TRUE(Roundtrip(ins).value == KeyScalar::F64(2.5));
  DeleteReq del;
  del.session_id = 1;
  del.table = "r";
  del.column = "price";
  del.value = KeyScalar::F64(-2.5);
  EXPECT_TRUE(Roundtrip(del).value == KeyScalar::F64(-2.5));
}

TEST(Protocol, ScalarKindTagBeyondOneRejected) {
  CountRangeReq req;
  req.session_id = 1;
  req.table = "r";
  req.column = "a";
  req.low = 1;
  req.high = 2;
  std::vector<uint8_t> bytes = EncodeMessage(1, req);
  // Payload layout: u64 session, u16+1 "r", u16+1 "a", then low's kind
  // tag byte.
  const size_t tag_off = kFrameHeaderBytes + 8 + (2 + 1) + (2 + 1);
  ASSERT_EQ(bytes[tag_off], 0u);  // i64 kind
  bytes[tag_off] = 2;             // unknown scalar kind
  Frame f;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed, &error),
            DecodeStatus::kFrame);  // framing itself is intact
  CountRangeReq out;
  EXPECT_FALSE(DecodeMessage(f, &out));  // the scalar decoder rejects it
}

TEST(Protocol, TruncatedScalarPayloadRejected) {
  // A frame whose payload ends mid-scalar (kind tag present, payload
  // bytes short) must reject, not read past the end.
  WireWriter w;
  w.U8(1);          // f64 kind
  w.U32(0xDEAD);    // only 4 of the 8 payload bytes
  Frame f;
  f.type = MsgType::kSumResult;
  f.request_id = 1;
  f.payload = w.Take();
  SumResult out;
  EXPECT_FALSE(DecodeMessage(f, &out));
}

TEST(Protocol, TruncatedFramesNeedMore) {
  CountRangeReq req;
  req.table = "r";
  req.column = "a";
  const std::vector<uint8_t> bytes = EncodeMessage(1, req);
  // Every strict prefix is kNeedMore, never kMalformed and never a frame.
  for (size_t n = 0; n < bytes.size(); ++n) {
    Frame f;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(TryDecodeFrame(bytes.data(), n, &f, &consumed, &error),
              DecodeStatus::kNeedMore)
        << "prefix " << n;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Protocol, OversizedPayloadLengthRejectedBeforeAllocation) {
  // Header claiming a payload beyond kMaxPayloadBytes: malformed
  // immediately, even though no payload bytes follow.
  WireWriter w;
  w.U32(static_cast<uint32_t>(kMaxPayloadBytes + 1));
  w.U8(static_cast<uint8_t>(MsgType::kCountRange));
  w.U64(1);
  Frame f;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(w.bytes().data(), w.bytes().size(), &f, &consumed,
                           &error),
            DecodeStatus::kMalformed);
  EXPECT_NE(error.find("exceeds cap"), std::string::npos) << error;
}

TEST(Protocol, UnknownMessageTypeRejected) {
  WireWriter w;
  w.U32(0);
  w.U8(200);  // not a MsgType
  w.U64(1);
  Frame f;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(w.bytes().data(), w.bytes().size(), &f, &consumed,
                           &error),
            DecodeStatus::kMalformed);
  // Type 0 is reserved-invalid too.
  WireWriter z;
  z.U32(0);
  z.U8(0);
  z.U64(1);
  EXPECT_EQ(TryDecodeFrame(z.bytes().data(), z.bytes().size(), &f, &consumed,
                           &error),
            DecodeStatus::kMalformed);
}

TEST(Protocol, TrailingGarbageRejectsMessage) {
  CountResult res;
  res.count = 5;
  std::vector<uint8_t> bytes = EncodeMessage(1, res);
  bytes.push_back(0xAB);             // extra payload byte...
  bytes[0] += 1;                     // ...declared in the length prefix
  Frame f;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed, &error),
            DecodeStatus::kFrame);
  CountResult out;
  EXPECT_FALSE(DecodeMessage(f, &out));  // payload must parse exactly
}

TEST(Protocol, LyingRowIdCountRejectedBeforeAllocation) {
  // A RowIdsResult whose element count promises far more rowids than the
  // payload holds must fail validation without reserving anything.
  WireWriter payload;
  payload.U32(100000000);  // claims 1e8 rowids
  payload.U64(1);          // ...but carries one
  WireWriter frame;
  frame.U32(static_cast<uint32_t>(payload.bytes().size()));
  frame.U8(static_cast<uint8_t>(MsgType::kRowIdsResult));
  frame.U64(9);
  std::vector<uint8_t> bytes = frame.Take();
  bytes.insert(bytes.end(), payload.bytes().begin(), payload.bytes().end());
  Frame f;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed, &error),
            DecodeStatus::kFrame);
  RowIdsResult out;
  EXPECT_FALSE(DecodeMessage(f, &out));
  EXPECT_TRUE(out.rowids.empty());
}

TEST(Protocol, OverlongStringRejected) {
  // Writer-side cap.
  WireWriter w;
  EXPECT_THROW(w.Str(std::string(kMaxStringBytes + 1, 'x')),
               std::length_error);
  // Reader-side cap: a hand-built payload with a length prefix beyond the
  // cap fails cleanly.
  WireWriter payload;
  payload.U64(1);                                        // session id
  payload.U16(static_cast<uint16_t>(kMaxStringBytes + 1));  // lying prefix
  WireWriter frame;
  frame.U32(static_cast<uint32_t>(payload.bytes().size()));
  frame.U8(static_cast<uint8_t>(MsgType::kCountRange));
  frame.U64(1);
  std::vector<uint8_t> bytes = frame.Take();
  bytes.insert(bytes.end(), payload.bytes().begin(), payload.bytes().end());
  Frame f;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed, &error),
            DecodeStatus::kFrame);
  CountRangeReq out;
  EXPECT_FALSE(DecodeMessage(f, &out));
}

TEST(Protocol, MultipleFramesDecodeSequentially) {
  CountResult a;
  a.count = 1;
  SumResult b;
  b.sum = 2;
  std::vector<uint8_t> bytes = EncodeMessage(10, a);
  const std::vector<uint8_t> second = EncodeMessage(11, b);
  bytes.insert(bytes.end(), second.begin(), second.end());

  Frame f;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(f.request_id, 10u);
  const size_t first = consumed;
  ASSERT_EQ(TryDecodeFrame(bytes.data() + first, bytes.size() - first, &f,
                           &consumed, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(f.request_id, 11u);
  EXPECT_EQ(first + consumed, bytes.size());
}

TEST(Protocol, RoundtripExecuteQuery) {
  ExecuteQueryReq req;
  req.session_id = 77;
  req.table = "lineitem";
  req.predicates.push_back({"l_shipdate", KeyScalar::I64(365),
                            KeyScalar::I64(730)});
  req.predicates.push_back({"l_discount", KeyScalar::F64(0.05),
                            KeyScalar::F64(0.07)});
  req.predicates.push_back(
      {"l_quantity", KeyScalar::I64(0), KeyScalar::I64(24)});
  req.results.push_back({0, ""});              // count
  req.results.push_back({1, "l_extendedprice"});  // sum
  req.results.push_back({2, ""});              // rowids
  const ExecuteQueryReq out = Roundtrip(req);
  EXPECT_EQ(out.session_id, 77u);
  EXPECT_EQ(out.table, "lineitem");
  ASSERT_EQ(out.predicates.size(), 3u);
  EXPECT_EQ(out.predicates[0].column, "l_shipdate");
  EXPECT_TRUE(out.predicates[0].low == KeyScalar::I64(365));
  EXPECT_TRUE(out.predicates[1].low == KeyScalar::F64(0.05));
  EXPECT_TRUE(out.predicates[1].high == KeyScalar::F64(0.07));
  ASSERT_EQ(out.results.size(), 3u);
  EXPECT_EQ(out.results[1].kind, 1u);
  EXPECT_EQ(out.results[1].column, "l_extendedprice");

  ExecuteQueryResult res;
  res.values.push_back(KeyScalar::I64(3));
  res.values.push_back(KeyScalar::F64(1234.5));
  res.values.push_back(KeyScalar::I64(3));
  res.rowids = {4, 9, 16};
  const ExecuteQueryResult rt = Roundtrip(res);
  ASSERT_EQ(rt.values.size(), 3u);
  EXPECT_TRUE(rt.values[1] == KeyScalar::F64(1234.5));
  EXPECT_EQ(rt.rowids, (std::vector<uint64_t>{4, 9, 16}));
}

TEST(Protocol, ExecuteQueryPredicateCountValidatedBeforeAllocation) {
  // Helper: one encoded single-predicate request we can then corrupt.
  ExecuteQueryReq req;
  req.session_id = 1;
  req.table = "t";
  req.predicates.push_back({"c", KeyScalar::I64(0), KeyScalar::I64(1)});
  req.results.push_back({0, ""});
  std::vector<uint8_t> bytes = EncodeMessage(1, req);
  // Payload layout: u64 session, u16+1 "t", then the predicate count.
  const size_t npred_off = kFrameHeaderBytes + 8 + (2 + 1);
  ASSERT_EQ(bytes[npred_off], 1u);

  auto decode = [](const std::vector<uint8_t>& b) {
    Frame f;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(TryDecodeFrame(b.data(), b.size(), &f, &consumed, &error),
              DecodeStatus::kFrame);
    ExecuteQueryReq out;
    return DecodeMessage(f, &out);
  };

  // A predicate count above the cap rejects before any vector grows, even
  // though the payload could never hold 255 predicates.
  bytes[npred_off] = 255;
  EXPECT_FALSE(decode(bytes));
  // An empty conjunction rejects too.
  bytes[npred_off] = 0;
  EXPECT_FALSE(decode(bytes));
  bytes[npred_off] = 1;
  EXPECT_TRUE(decode(bytes));  // restored: valid again
}

TEST(Protocol, ExecuteQueryBadKindsRejected) {
  ExecuteQueryReq req;
  req.session_id = 1;
  req.table = "t";
  req.predicates.push_back({"c", KeyScalar::I64(0), KeyScalar::I64(1)});
  req.results.push_back({0, ""});
  {
    // Scalar kind 2 in a predicate bound poisons the decode.
    std::vector<uint8_t> bytes = EncodeMessage(1, req);
    const size_t tag_off = kFrameHeaderBytes + 8 + (2 + 1) + 1 + (2 + 1);
    ASSERT_EQ(bytes[tag_off], 0u);  // low bound's i64 kind tag
    bytes[tag_off] = 2;
    Frame f;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed,
                             &error),
              DecodeStatus::kFrame);
    ExecuteQueryReq out;
    EXPECT_FALSE(DecodeMessage(f, &out));
  }
  {
    // Result kind above 3 rejects.
    ExecuteQueryReq bad = req;
    bad.results[0].kind = 4;
    const std::vector<uint8_t> bytes = EncodeMessage(1, bad);
    Frame f;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed,
                             &error),
              DecodeStatus::kFrame);
    ExecuteQueryReq out;
    EXPECT_FALSE(DecodeMessage(f, &out));
  }
  {
    // A sum result kind with an empty column name rejects at the frame
    // layer (it could never resolve server-side).
    ExecuteQueryReq bad = req;
    bad.results[0] = {1, ""};
    const std::vector<uint8_t> bytes = EncodeMessage(1, bad);
    Frame f;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed,
                             &error),
              DecodeStatus::kFrame);
    ExecuteQueryReq out;
    EXPECT_FALSE(DecodeMessage(f, &out));
  }
}

TEST(Protocol, ExecuteQueryResultLyingRowIdCountRejected) {
  // Same bounded validation as RowIdsResult: the claimed rowid count must
  // match the bytes actually present before anything is reserved.
  WireWriter payload;
  payload.U8(1);                      // one value
  payload.Scalar(KeyScalar::I64(1));  // the value
  payload.U32(50000000);              // claims 5e7 rowids
  payload.U64(1);                     // ...carries one
  WireWriter frame;
  frame.U32(static_cast<uint32_t>(payload.bytes().size()));
  frame.U8(static_cast<uint8_t>(MsgType::kExecuteQueryResult));
  frame.U64(3);
  std::vector<uint8_t> bytes = frame.Take();
  bytes.insert(bytes.end(), payload.bytes().begin(), payload.bytes().end());
  Frame f;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &f, &consumed, &error),
            DecodeStatus::kFrame);
  ExecuteQueryResult out;
  EXPECT_FALSE(DecodeMessage(f, &out));
  EXPECT_TRUE(out.rowids.empty());
}

TEST(Protocol, LittleEndianOnTheWire) {
  // The format is explicitly little-endian: byte 0 of the frame is the low
  // byte of the payload length, and scalar payloads serialize low-first.
  OpenSessionAck ack;
  ack.session_id = 0x0102030405060708ull;
  const std::vector<uint8_t> bytes = EncodeMessage(0, ack);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 8);
  EXPECT_EQ(bytes[0], 8);  // payload length low byte
  EXPECT_EQ(bytes[kFrameHeaderBytes], 0x08);      // session id low byte
  EXPECT_EQ(bytes[kFrameHeaderBytes + 7], 0x01);  // session id high byte
}

}  // namespace
}  // namespace holix::net
