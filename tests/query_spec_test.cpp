/// QuerySpec (declarative multi-predicate) tests: all-7-modes parity and
/// cross-mode checksum identity against a naive conjunction oracle (int64
/// and double predicate mixes), NaN/±inf bounds and values, rejection of
/// empty conjunctions / empty result lists / column-less sums,
/// predicate-order independence of every result (double sums bit-exact),
/// per-predicate index refinement under repetition, concurrent
/// multi-predicate queries racing inserts, and the name-based F64
/// convenience overloads (SelectRowIdsF64 / ProjectSumF64).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "test_support.h"

namespace holix {
namespace {

using test::MakeUniform;

constexpr int64_t kDomain = 1 << 20;

constexpr ExecMode kAllModes[] = {
    ExecMode::kScan,       ExecMode::kOffline, ExecMode::kOnline,
    ExecMode::kAdaptive,   ExecMode::kStochastic,
    ExecMode::kCCGI,       ExecMode::kHolistic,
};

DatabaseOptions ModeOptions(ExecMode m) {
  DatabaseOptions opts;
  opts.mode = m;
  opts.user_threads = 2;
  opts.total_cores = 4;
  opts.holistic.monitor_interval_seconds = 0.001;
  return opts;
}

std::vector<double> UniformDoubles(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = static_cast<double>(rng.Below(kDomain)) * 0.25;
  return v;
}

/// Half-open [lo, hi) membership in the KeyTraits<double> total order with
/// the engine's closed-bound degradation at the NaN key (the order's top).
bool HitF64(double v, double lo, double hi) {
  using KT = KeyTraits<double>;
  const double cv = KT::Canonical(v);
  const double clo = KT::Canonical(lo);
  const double chi = KT::Canonical(hi);
  if (KT::IsHighest(chi)) return !KT::Less(cv, clo);  // closed tail
  return !KT::Less(cv, clo) && KT::Less(cv, chi);
}

/// One random conjunction over (a:int64, b:int64, d:double) plus the
/// expected answers, computed by a naive full-scan conjunction in
/// ascending row order (the same order the engine's sorted qualifying set
/// induces, so double sums must match bit-for-bit).
struct ConjCase {
  int64_t a_lo, a_hi;
  int64_t b_lo, b_hi;
  double d_lo, d_hi;
  bool use_b = true;
  bool use_d = true;

  size_t count = 0;
  int64_t sum_b = 0;
  double sum_d = 0;
  PositionList rowids;

  void ComputeOracle(const std::vector<int64_t>& a,
                     const std::vector<int64_t>& b,
                     const std::vector<double>& d) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] < a_lo || a[i] >= a_hi) continue;
      if (use_b && (b[i] < b_lo || b[i] >= b_hi)) continue;
      if (use_d && !HitF64(d[i], d_lo, d_hi)) continue;
      ++count;
      sum_b += b[i];
      sum_d += d[i];
      rowids.push_back(i);
    }
  }
};

ConjCase RandomCase(Rng& rng, const std::vector<int64_t>& a,
                    const std::vector<int64_t>& b,
                    const std::vector<double>& d) {
  ConjCase c{};
  c.a_lo = static_cast<int64_t>(rng.Below(kDomain));
  c.a_hi = c.a_lo + 1 + static_cast<int64_t>(rng.Below(kDomain / 2));
  c.b_lo = static_cast<int64_t>(rng.Below(kDomain / 2));
  c.b_hi = c.b_lo + 1 + static_cast<int64_t>(rng.Below(kDomain));
  c.d_lo = static_cast<double>(rng.Below(kDomain)) * 0.25;
  c.d_hi = c.d_lo + 1.0 + static_cast<double>(rng.Below(kDomain)) * 0.125;
  c.use_b = rng.Below(4) != 0;
  c.use_d = rng.Below(4) != 0 || !c.use_b;
  c.ComputeOracle(a, b, d);
  return c;
}

QuerySpec SpecFor(const ConjCase& c, const ColumnHandle& ha,
                  const ColumnHandle& hb, const ColumnHandle& hd) {
  QuerySpec spec;
  spec.Where(ha, c.a_lo, c.a_hi);
  if (c.use_b) spec.Where(hb, c.b_lo, c.b_hi);
  if (c.use_d) spec.Where(hd, c.d_lo, c.d_hi);
  spec.Count().Sum(hb).Sum(hd).RowIds();
  return spec;
}

TEST(QuerySpec, AllModesParityAndCrossModeChecksums) {
  const auto a = MakeUniform(20000, kDomain, 41);
  const auto b = MakeUniform(20000, kDomain, 42);
  const auto d = UniformDoubles(20000, 43);

  Rng case_rng(44);
  std::vector<ConjCase> cases;
  for (int i = 0; i < 16; ++i) cases.push_back(RandomCase(case_rng, a, b, d));

  for (ExecMode mode : kAllModes) {
    Database db(ModeOptions(mode));
    db.LoadColumn("t", "a", a);
    db.LoadColumn("t", "b", b);
    db.LoadColumn<double>("t", "d", d);
    const ColumnHandle ha = db.Resolve("t", "a");
    const ColumnHandle hb = db.Resolve("t", "b");
    const ColumnHandle hd = db.Resolve("t", "d");

    for (size_t i = 0; i < cases.size(); ++i) {
      const ConjCase& c = cases[i];
      const QueryResult r = db.Execute(SpecFor(c, ha, hb, hd));
      ASSERT_EQ(r.values.size(), 4u);
      EXPECT_EQ(r.values[0].i, static_cast<int64_t>(c.count))
          << ExecModeName(mode) << " case " << i;
      EXPECT_EQ(r.values[1].i, c.sum_b) << ExecModeName(mode) << " case "
                                        << i;
      // Double sums over the ascending qualifying set are bit-identical
      // across every mode — not merely within tolerance.
      EXPECT_EQ(std::bit_cast<uint64_t>(r.values[2].d),
                std::bit_cast<uint64_t>(c.sum_d))
          << ExecModeName(mode) << " case " << i;
      EXPECT_EQ(r.values[3].i, static_cast<int64_t>(c.count));
      EXPECT_EQ(r.rowids, c.rowids) << ExecModeName(mode) << " case " << i;
    }
  }
}

TEST(QuerySpec, SinglePredicateMultiResultMatchesOracle) {
  const auto a = MakeUniform(10000, kDomain, 45);
  const auto b = MakeUniform(10000, kDomain, 46);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", a);
  db.LoadColumn("t", "b", b);
  const ColumnHandle ha = db.Resolve("t", "a");
  const ColumnHandle hb = db.Resolve("t", "b");

  const int64_t lo = 1000, hi = 700000;
  size_t count = 0;
  int64_t sum_a = 0, sum_b = 0;
  PositionList expect_rows;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= lo && a[i] < hi) {
      ++count;
      sum_a += a[i];
      sum_b += b[i];
      expect_rows.push_back(i);
    }
  }
  QuerySpec spec;
  spec.Where(ha, lo, hi).Count().Sum(ha).ProjectSum(hb).RowIds();
  const QueryResult r = db.Execute(spec);
  ASSERT_EQ(r.values.size(), 4u);
  EXPECT_EQ(r.values[0].i, static_cast<int64_t>(count));
  EXPECT_EQ(r.values[1].i, sum_a);
  EXPECT_EQ(r.values[2].i, sum_b);
  EXPECT_EQ(r.values[3].i, static_cast<int64_t>(count));
  EXPECT_EQ(r.rowids, expect_rows);  // multi-result rowids sort ascending
}

TEST(QuerySpec, NaNAndInfinityBoundsAndValues) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto d = UniformDoubles(8000, 47);
  // Specials live at known tail rows; the int64 column qualifies them all.
  d.push_back(kNaN);
  d.push_back(kInf);
  d.push_back(-kInf);
  d.push_back(-0.0);
  const auto a = MakeUniform(d.size(), kDomain, 48);

  for (ExecMode mode : {ExecMode::kScan, ExecMode::kAdaptive}) {
    Database db(ModeOptions(mode));
    db.LoadColumn("t", "a", a);
    db.LoadColumn<double>("t", "d", d);
    const ColumnHandle ha = db.Resolve("t", "a");
    const ColumnHandle hd = db.Resolve("t", "d");

    auto run_count = [&](double lo, double hi) -> int64_t {
      QuerySpec spec;
      spec.Where(ha, std::numeric_limits<int64_t>::min(),
                 std::numeric_limits<int64_t>::max())
          .Where(hd, lo, hi)
          .Count();
      return db.Execute(spec).values[0].i;
    };
    auto oracle_count = [&](double lo, double hi) -> int64_t {
      int64_t n = 0;
      for (double v : d) n += HitF64(v, lo, hi) ? 1 : 0;
      return n;
    };
    // [-inf, +inf): everything finite plus -inf; excludes +inf and NaN.
    EXPECT_EQ(run_count(-kInf, kInf), oracle_count(-kInf, kInf))
        << ExecModeName(mode);
    // [-inf, NaN]: the closed tail — every row including +inf and NaN.
    EXPECT_EQ(run_count(-kInf, kNaN), static_cast<int64_t>(d.size()))
        << ExecModeName(mode);
    // [NaN, NaN]: exactly the NaN rows.
    EXPECT_EQ(run_count(kNaN, kNaN), 1) << ExecModeName(mode);
    // [+inf, NaN]: +inf and NaN rows.
    EXPECT_EQ(run_count(kInf, kNaN), 2) << ExecModeName(mode);
    // [-0.0, 0.5): -0.0 == +0.0 under the total order.
    EXPECT_EQ(run_count(-0.0, 0.5), oracle_count(0.0, 0.5))
        << ExecModeName(mode);
  }
}

TEST(QuerySpec, MalformedSpecsRejected) {
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", MakeUniform(1000, kDomain, 49));
  db.LoadColumn("u", "z", MakeUniform(1000, kDomain, 50));
  const ColumnHandle ha = db.Resolve("t", "a");
  const ColumnHandle hz = db.Resolve("u", "z");

  QuerySpec empty;
  empty.Count();
  EXPECT_THROW(db.Execute(empty), std::invalid_argument);

  QuerySpec no_results;
  no_results.Where(ha, 0, 100);
  EXPECT_THROW(db.Execute(no_results), std::invalid_argument);

  QuerySpec column_less_sum;
  column_less_sum.Where(ha, 0, 100);
  column_less_sum.results.push_back({ResultRequest::kSum, {}});
  EXPECT_THROW(db.Execute(column_less_sum), std::invalid_argument);

  QuerySpec cross_table;
  cross_table.Where(ha, 0, 100).Where(hz, 0, 100).Count();
  EXPECT_THROW(db.Execute(cross_table), std::invalid_argument);
}

TEST(QuerySpec, PredicateOrderIndependence) {
  const auto a = MakeUniform(15000, kDomain, 51);
  const auto b = MakeUniform(15000, kDomain, 52);
  const auto d = UniformDoubles(15000, 53);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", a);
  db.LoadColumn("t", "b", b);
  db.LoadColumn<double>("t", "d", d);
  const ColumnHandle ha = db.Resolve("t", "a");
  const ColumnHandle hb = db.Resolve("t", "b");
  const ColumnHandle hd = db.Resolve("t", "d");

  const RangePredicate preds[3] = {
      {ha, KeyScalar::I64(5000), KeyScalar::I64(400000)},
      {hb, KeyScalar::I64(0), KeyScalar::I64(900000)},
      {hd, KeyScalar::F64(100.5), KeyScalar::F64(200000.25)},
  };
  // Every permutation — executed back to back on the SAME database, so
  // the index state evolves between runs — must answer identically.
  int order[3] = {0, 1, 2};
  std::sort(order, order + 3);
  QueryResult first;
  bool have_first = false;
  do {
    QuerySpec spec;
    for (int idx : order) spec.predicates.push_back(preds[idx]);
    spec.Count().Sum(hd).RowIds();
    const QueryResult r = db.Execute(spec);
    if (!have_first) {
      first = r;
      have_first = true;
      EXPECT_GT(first.values[0].i, 0);  // non-degenerate case
      continue;
    }
    EXPECT_EQ(r.values[0].i, first.values[0].i);
    EXPECT_EQ(std::bit_cast<uint64_t>(r.values[1].d),
              std::bit_cast<uint64_t>(first.values[1].d));
    EXPECT_EQ(r.rowids, first.rowids);
  } while (std::next_permutation(order, order + 3));
}

TEST(QuerySpec, RepeatedExecutionRefinesEveryPredicateColumn) {
  const auto a = MakeUniform(30000, kDomain, 54);
  const auto b = MakeUniform(30000, kDomain, 55);
  const auto d = UniformDoubles(30000, 56);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", a);
  db.LoadColumn("t", "b", b);
  db.LoadColumn<double>("t", "d", d);
  const ColumnHandle ha = db.Resolve("t", "a");
  const ColumnHandle hb = db.Resolve("t", "b");
  const ColumnHandle hd = db.Resolve("t", "d");

  auto pieces = [&](const ColumnHandle& h) -> size_t {
    return DispatchIndexableType(h.type(), [&](auto tag) -> size_t {
      using T = typename decltype(tag)::type;
      auto c = h.entry()->runtime<T>().cracker.load();
      return c == nullptr ? 1 : c->NumPieces();
    });
  };

  Rng rng(57);
  auto run_round = [&](int queries) {
    for (int i = 0; i < queries; ++i) {
      const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
      QuerySpec spec;
      // A selective driver on `a`, a deliberately wide conjunct on `b`
      // (the probe path must still crack it via RefineHint), and a double
      // conjunct on `d`.
      spec.Where(ha, lo, lo + 1 + static_cast<int64_t>(rng.Below(10000)))
          .Where(hb, static_cast<int64_t>(rng.Below(1000)), kDomain)
          .Where(hd, static_cast<double>(rng.Below(kDomain)) * 0.01,
                 static_cast<double>(kDomain))
          .Count();
      db.Execute(spec);
    }
  };

  run_round(8);
  const size_t a1 = pieces(ha), b1 = pieces(hb), d1 = pieces(hd);
  EXPECT_GT(a1, 1u);
  EXPECT_GT(b1, 1u);
  EXPECT_GT(d1, 1u);
  run_round(24);
  // Piece counts grow on EVERY predicate column as the workload repeats.
  EXPECT_GT(pieces(ha), a1);
  EXPECT_GT(pieces(hb), b1);
  EXPECT_GT(pieces(hd), d1);
}

TEST(QuerySpec, ConcurrentMultiPredicateQueriesWithInserts) {
  const size_t rows = 20000;
  const auto a = MakeUniform(rows, kDomain, 58);
  const auto b = MakeUniform(rows, kDomain, 59);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", a);
  db.LoadColumn("t", "b", b);
  const ColumnHandle ha = db.Resolve("t", "a");
  const ColumnHandle hb = db.Resolve("t", "b");

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Session s = db.OpenSession();
      Rng rng(100 + t);
      for (int i = 0; i < 60; ++i) {
        const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
        QuerySpec spec;
        spec.Where(ha, lo, lo + 1 + static_cast<int64_t>(rng.Below(kDomain)))
            .Where(hb, 0, static_cast<int64_t>(rng.Below(kDomain)) + 1)
            .Count()
            .Sum(hb);
        const QueryResult r = s.Execute(spec);
        // A conjunction can never return more rows than the table holds
        // (inserted rows have no value in the other column).
        if (r.values[0].i > static_cast<int64_t>(rows)) {
          failed.store(true);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Session s = db.OpenSession();
      Rng rng(200 + t);
      for (int i = 0; i < 200; ++i) {
        s.Insert(t == 0 ? ha : hb,
                 static_cast<int64_t>(rng.Below(kDomain)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  // Quiesced: the conjunction still matches the base-data oracle exactly
  // (rows inserted into a single column are excluded by the conjunction).
  size_t expect = 0;
  for (size_t i = 0; i < rows; ++i) {
    if (a[i] >= 1000 && a[i] < 800000 && b[i] >= 0 && b[i] < 500000) {
      ++expect;
    }
  }
  QuerySpec spec;
  spec.Where(ha, 1000, 800000).Where(hb, 0, 500000).Count();
  EXPECT_EQ(db.Execute(spec).values[0].i, static_cast<int64_t>(expect));
}

TEST(QuerySpec, MaterializedPathIncludesAppendedRowsConsistently) {
  // A row appended by Insert is visible to every shape that touches only
  // its own column: the legacy one-predicate/one-result primitives AND the
  // materialized path (several results), whose positional sums resolve the
  // appended rowid through the column's pending registry. Count, rowids
  // and sums must agree about which rows qualify.
  const auto a = MakeUniform(5000, kDomain, 70);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", a);
  const ColumnHandle ha = db.Resolve("t", "a");

  size_t base_count = 0;
  int64_t base_sum = 0;
  for (int64_t v : a) {
    if (v >= 0 && v < 1000) {
      ++base_count;
      base_sum += v;
    }
  }
  const RowId inserted = db.Insert(ha, 500);
  EXPECT_GE(inserted, a.size());
  // Legacy shape: the merged pending insert is counted and summed.
  EXPECT_EQ(db.CountRange(ha, 0, 1000), base_count + 1);
  EXPECT_EQ(db.SumRange(ha, 0, 1000), base_sum + 500);

  // Materialized shape: same qualifying set, internally consistent.
  QuerySpec spec;
  spec.Where(ha, int64_t{0}, int64_t{1000}).Count().Sum(ha).RowIds();
  const QueryResult r = db.Execute(spec);
  EXPECT_EQ(r.values[0].i, static_cast<int64_t>(base_count) + 1);
  EXPECT_EQ(r.values[1].i, base_sum + 500);
  EXPECT_EQ(r.rowids.size(), base_count + 1);
  EXPECT_TRUE(std::find(r.rowids.begin(), r.rowids.end(), inserted) !=
              r.rowids.end());

  // The registry survives the Ripple merges those queries performed: ask
  // again now that the pending queues are drained.
  const QueryResult again = db.Execute(spec);
  EXPECT_EQ(again.values[0].i, static_cast<int64_t>(base_count) + 1);
  EXPECT_EQ(again.values[1].i, base_sum + 500);

  // Deleting one row with that value (whichever rowid the index resolves
  // — possibly the appended one, whose registry entry is then erased)
  // shrinks every result shape by exactly that row.
  EXPECT_TRUE(db.Delete(ha, 500));
  const QueryResult gone = db.Execute(spec);
  EXPECT_EQ(gone.values[0].i, static_cast<int64_t>(base_count));
  EXPECT_EQ(gone.values[1].i, base_sum);
  EXPECT_EQ(gone.rowids.size(), base_count);
}

TEST(QuerySpec, ConjunctionAfterInsertBitExactInAllModes) {
  // The ISSUE-6 regression: insert into one column, then IMMEDIATELY run a
  // 2-predicate conjunction. The inserted row must be excluded (it has no
  // value in the other predicate column), and the answer must stay
  // bit-exact with the base-data oracle in every mode — including the
  // probe path, which used to skip appended rowids silently instead of
  // resolving them. Also pins the flip side: a single-predicate
  // multi-result spec on the inserted column DOES see the row.
  const size_t rows = 4000;
  const auto a = MakeUniform(rows, kDomain, 71);
  const auto b = MakeUniform(rows, kDomain, 72);
  size_t expect_count = 0;
  int64_t expect_sum_b = 0;
  for (size_t i = 0; i < rows; ++i) {
    if (a[i] >= 1000 && a[i] < 700000 && b[i] >= 2000 && b[i] < 900000) {
      ++expect_count;
      expect_sum_b += b[i];
    }
  }
  for (ExecMode m : kAllModes) {
    SCOPED_TRACE(static_cast<int>(m));
    Database db(ModeOptions(m));
    db.LoadColumn("t", "a", a);
    db.LoadColumn("t", "b", b);
    const ColumnHandle ha = db.Resolve("t", "a");
    const ColumnHandle hb = db.Resolve("t", "b");

    bool inserted = false;
    try {
      db.Insert(ha, 5000);  // qualifies on a, missing from b
      inserted = true;
    } catch (const std::logic_error&) {
      // Non-cracking modes reject updates; the conjunction must still be
      // exact there.
    }

    QuerySpec spec;
    spec.Where(ha, int64_t{1000}, int64_t{700000})
        .Where(hb, int64_t{2000}, int64_t{900000})
        .Count()
        .Sum(hb);
    const QueryResult r = db.Execute(spec);
    EXPECT_EQ(r.values[0].i, static_cast<int64_t>(expect_count));
    EXPECT_EQ(r.values[1].i, expect_sum_b);
    // Same answer with the predicate order flipped (drives the other
    // planning order, so both the merge and the probe paths see the
    // appended row).
    QuerySpec flipped;
    flipped.Where(hb, int64_t{2000}, int64_t{900000})
        .Where(ha, int64_t{1000}, int64_t{700000})
        .Count()
        .Sum(hb);
    EXPECT_EQ(db.Execute(flipped).values[0].i,
              static_cast<int64_t>(expect_count));

    if (inserted) {
      size_t single_count = 0;
      int64_t single_sum = 0;
      for (int64_t v : a) {
        if (v >= 1000 && v < 700000) {
          ++single_count;
          single_sum += v;
        }
      }
      QuerySpec single;
      single.Where(ha, int64_t{1000}, int64_t{700000}).Count().Sum(ha);
      const QueryResult sr = db.Execute(single);
      EXPECT_EQ(sr.values[0].i, static_cast<int64_t>(single_count) + 1);
      EXPECT_EQ(sr.values[1].i, single_sum + 5000);
    }
  }
}

TEST(QuerySpec, ProjectSumAfterInsertStaysInBounds) {
  // ProjectSum whose WHERE column holds appended rows used to read the
  // project column out of bounds (rowid past the base array). The appended
  // row must simply contribute nothing when the project column never saw
  // it — and the inserted value when WHERE and PROJECT are the same
  // column.
  const size_t rows = 3000;
  const auto a = MakeUniform(rows, kDomain, 73);
  const auto b = MakeUniform(rows, kDomain, 74);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", a);
  db.LoadColumn("t", "b", b);
  const ColumnHandle ha = db.Resolve("t", "a");
  const ColumnHandle hb = db.Resolve("t", "b");

  int64_t expect = 0;
  for (size_t i = 0; i < rows; ++i) {
    if (a[i] >= 0 && a[i] < 900000) expect += b[i];
  }
  for (int i = 0; i < 64; ++i) db.Insert(ha, 100 + i);
  EXPECT_EQ(db.ProjectSum(ha, hb, 0, 900000), expect);
  // Run twice: the first call Ripple-merged the pending rows into the
  // index, so the second exercises the persistent registry path.
  EXPECT_EQ(db.ProjectSum(ha, hb, 0, 900000), expect);
}

TEST(QuerySpec, AsyncSubmitExecute) {
  const auto a = MakeUniform(10000, kDomain, 60);
  const auto b = MakeUniform(10000, kDomain, 61);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn("t", "a", a);
  db.LoadColumn("t", "b", b);
  Session s = db.OpenSession();
  QuerySpec spec;
  spec.Where(s.Handle("t", "a"), 100, 600000)
      .Where(s.Handle("t", "b"), 100, 600000)
      .Count();
  auto fut = s.SubmitExecute(spec);
  const QueryResult sync = s.Execute(spec);
  EXPECT_EQ(fut.get().values[0].i, sync.values[0].i);
}

TEST(QuerySpec, NameBasedF64ConvenienceOverloads) {
  const auto d1 = UniformDoubles(8000, 62);
  const auto d2 = UniformDoubles(8000, 63);
  Database db(ModeOptions(ExecMode::kAdaptive));
  db.LoadColumn<double>("t", "d1", d1);
  db.LoadColumn<double>("t", "d2", d2);
  const ColumnHandle h1 = db.Resolve("t", "d1");
  const ColumnHandle h2 = db.Resolve("t", "d2");

  // The name-based forms must agree with the handle-based core.
  const double lo = 250.25, hi = 100000.5;
  PositionList by_name = db.SelectRowIdsF64("t", "d1", lo, hi);
  PositionList by_handle = db.SelectRowIdsF64(h1, lo, hi);
  std::sort(by_name.begin(), by_name.end());
  std::sort(by_handle.begin(), by_handle.end());
  EXPECT_EQ(by_name, by_handle);
  EXPECT_FALSE(by_name.empty());

  const double ps_name = db.ProjectSumF64("t", "d1", "d2", lo, hi);
  const double ps_handle = db.ProjectSumF64(h1, h2, lo, hi);
  EXPECT_DOUBLE_EQ(ps_name, ps_handle);
  double oracle = 0;
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1[i] >= lo && d1[i] < hi) oracle += d2[i];
  }
  EXPECT_DOUBLE_EQ(ps_name, oracle);
}

}  // namespace
}  // namespace holix
