/// \file recovery_soak_test.cpp
/// \brief Crash-recovery soak: a forked child runs a durable update +
/// query stream and is SIGKILLed mid-flight; the parent recovers from the
/// same data directory and checks the recovered state against the
/// acknowledgement oracle — every acknowledged insert present exactly
/// once, nothing duplicated, base data checksum-equal to an uninterrupted
/// load, cracker invariants intact. Repeats for several kill/recover
/// cycles so recovery itself re-enters the crash loop.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "persist/persistence.h"
#include "test_support.h"

namespace holix::persist {
namespace {

constexpr size_t kRows = 50000;
constexpr int64_t kDomain = 1 << 20;
constexpr uint64_t kSeed = 97;

DatabaseOptions SoakOptions() {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  opts.user_threads = 2;
  opts.total_cores = 4;
  return opts;
}

PersistOptions SoakPersist(const std::string& dir) {
  PersistOptions p;
  p.data_dir = dir;
  // kAlways: an acknowledged update is durable — the property under test.
  p.fsync = FsyncPolicy::kAlways;
  return p;
}

/// Durably records the highest acknowledged insert index: 8 bytes,
/// pwrite + fsync, so the parent can reconstruct the oracle after SIGKILL.
class AckFile {
 public:
  explicit AckFile(const std::string& path)
      : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644)) {}
  ~AckFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  void Record(uint64_t i) {
    (void)::pwrite(fd_, &i, sizeof(i), 0);
    (void)::fsync(fd_);
  }
  static uint64_t Read(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return 0;
    uint64_t i = 0;
    const ssize_t n = ::pread(fd, &i, sizeof(i), 0);
    ::close(fd);
    return n == static_cast<ssize_t>(sizeof(i)) ? i : 0;
  }

 private:
  int fd_;
};

/// The child's workload: recover-or-load, checkpoint, then an endless
/// acknowledged update stream with interleaved cracking queries. Inserted
/// values are kDomain + i (unique, outside the base domain), so the
/// recovered count of each value isolates exactly that update. Runs until
/// SIGKILLed; never returns.
[[noreturn]] void RunChildWorkload(const std::string& dir,
                                   const std::string& ack_path,
                                   const std::string& ready_path) {
  Database db(SoakOptions());
  PersistOptions popts = SoakPersist(dir);
  // Exercise the background checkpointer in the crash loop too.
  popts.checkpoint_interval_seconds = 0.05;
  uint64_t start = 0;
  if (HasManifest(dir)) {
    PersistenceManager* pm = new PersistenceManager(db, popts);
    (void)pm;  // leaked deliberately: this process only exits via SIGKILL
    // Resume past the ack high-water mark AND any in-flight insert that
    // became durable before its ack write landed — re-inserting it would
    // duplicate an eventually-acknowledged value.
    start = AckFile::Read(ack_path);
    const ColumnHandle probe = db.Resolve("r", "a");
    while (db.CountRange(probe, static_cast<int64_t>(kDomain + start + 1),
                         static_cast<int64_t>(kDomain + start + 2)) == 1) {
      ++start;
    }
  } else {
    db.LoadColumn("r", "a", test::MakeUniform(kRows, kDomain, kSeed));
    PersistenceManager* pm = new PersistenceManager(db, popts);
    pm->Checkpoint();
  }

  AckFile ack(ack_path);
  // Tell the parent the gun is loaded.
  { AckFile ready(ready_path); ready.Record(1); }

  const ColumnHandle h = db.Resolve("r", "a");
  for (uint64_t i = start + 1;; ++i) {
    (void)db.Insert(h, static_cast<int64_t>(kDomain + i));  // durable on return
    ack.Record(i);
    if (i % 8 == 0) {
      const int64_t lo = static_cast<int64_t>((i * 7919) % kDomain);
      (void)db.CountRange(h, lo, lo + 4096);
    }
    if (i % 32 == 0) {
      // Keep the delete WAL path hot with disposable values outside the
      // tracked region: insert-then-delete is net zero, and a crash
      // between the two legs strands at most one leftover there.
      const int64_t w = static_cast<int64_t>(2 * kDomain + i);
      (void)db.Insert(h, w);
      (void)db.Delete(h, w);
    }
  }
}

TEST(RecoverySoak, KillNineThenRecoverMatchesAcknowledgementOracle) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "holix_recovery_soak";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const std::string dir = (root / "data").string();
  const std::string ack_path = (root / "ack").string();
  const std::string ready_path = (root / "ready").string();

  const std::vector<int64_t> base = test::MakeUniform(kRows, kDomain, kSeed);

  constexpr int kCycles = 3;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::filesystem::remove(ready_path);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunChildWorkload(dir, ack_path, ready_path);  // never returns
    }

    // Wait until the child finished load/recover + checkpoint and entered
    // the update stream, let it run a while, then kill -9 mid-stream.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (AckFile::Read(ready_path) == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "child never became ready";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150 + 70 * cycle));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Recover in-process and check against the oracle.
    const uint64_t acked = AckFile::Read(ack_path);
    ASSERT_GT(acked, 0u);

    Database db(SoakOptions());
    PersistenceManager pm(db, SoakPersist(dir));
    ASSERT_TRUE(pm.recovered());
    const ColumnHandle h = db.Resolve("r", "a");

    // 1. No acknowledged insert lost, none duplicated: each acked unique
    //    value is present exactly once.
    for (uint64_t i = 1; i <= acked; ++i) {
      const int64_t v = static_cast<int64_t>(kDomain + i);
      ASSERT_EQ(db.CountRange(h, v, v + 1), 1u)
          << "cycle " << cycle << " acked insert " << i;
    }
    // 2. At most one in-flight insert beyond the ack file: an insert can
    //    be WAL-durable before its ack write lands, but nothing further.
    const size_t inserted = db.CountRange(
        h, kDomain, kDomain + static_cast<int64_t>(acked) + 100);
    EXPECT_GE(inserted, acked);
    EXPECT_LE(inserted, acked + 1);
    // 2b. Disposable insert+delete pairs are net zero; each crash strands
    //     at most one leftover in their region.
    EXPECT_LE(db.CountRange(h, 2 * kDomain, 3 * kDomain),
              static_cast<size_t>(cycle) + 1);
    // 3. Base data checksum-equal to the uninterrupted oracle.
    EXPECT_EQ(db.CountRange(h, 0, kDomain), kRows);
    for (int64_t lo = 0; lo < kDomain; lo += kDomain / 8) {
      EXPECT_EQ(db.CountRange(h, lo, lo + kDomain / 8),
                test::NaiveCount(base, lo, lo + kDomain / 8))
          << "cycle " << cycle << " base range at " << lo;
    }
    // The next cycle's child recovers from the state this one verified
    // (plus whatever checkpoints its background thread cut).
  }

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace holix::persist
