/// Soak test of the event-loop server (label: slow): a 1k-connection
/// sweep holding every socket open at once, connect/close churn with
/// abrupt RST disconnects mid-frame, and pipelined queries racing
/// inserts — all while asserting the process leaks neither file
/// descriptors nor server threads across Start/Stop.
///
/// HOLIX_SOAK_CONNECTIONS scales the sweep down for slow configurations
/// (the TSan CI job sets it); the default exercises the fig17_socket
/// regime of 1024 concurrent connections on a handful of IO threads.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "test_support.h"

namespace holix::net {
namespace {

constexpr int64_t kDomain = 1 << 20;

size_t SoakConnections() {
  size_t n = 1024;
  if (const char* env = std::getenv("HOLIX_SOAK_CONNECTIONS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) n = static_cast<size_t>(v);
  }
  // Client and server fds both live in this process, so each connection
  // costs two; clamp to the soft RLIMIT_NOFILE with headroom for the
  // database, gtest and the loops' epoll/event fds.
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY &&
      rl.rlim_cur > 256) {
    n = std::min(n, (static_cast<size_t>(rl.rlim_cur) - 128) / 2);
  }
  return n;
}

/// Open fds of this process, via /proc/self/fd (Linux-only, like epoll).
size_t OpenFdCount() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count >= 3 ? count - 3 : 0;  // ".", "..", the dirfd itself
}

/// Raw socket that can half-send a frame and reset (RST) the connection.
class AbruptConn {
 public:
  explicit AbruptConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~AbruptConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }
  void Send(const uint8_t* data, size_t n) {
    while (n > 0 && fd_ >= 0) {
      const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return;
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
  }
  void Reset() {
    if (fd_ < 0) return;
    linger lg{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

TEST(ServerSoak, ThousandConnectionsChurnRstAndRacesWithoutLeaks) {
  const size_t kConns = SoakConnections();
  const size_t kWorkers = 8;

  Database db([] {
    DatabaseOptions opts;
    opts.mode = ExecMode::kAdaptive;
    opts.user_threads = 2;
    opts.total_cores = 4;
    return opts;
  }());
  const auto data = test::MakeUniform(100000, kDomain, 41);
  db.LoadColumn("r", "a", data);
  const uint64_t base_count = data.size();

  // Warm the database's lazily-created pools BEFORE the fd baseline:
  // Start/Stop must account for every fd and thread it creates, while the
  // engine's pools legitimately persist.
  {
    Session warm = db.OpenSession();
    (void)warm.CountRange("r", "a", 0, kDomain);
  }
  {
    HolixServer warm_srv(db);
    warm_srv.Start();
    HolixClient warm_cli;
    warm_cli.Connect("127.0.0.1", warm_srv.port());
    const uint64_t sid = warm_cli.OpenSession();
    (void)warm_cli.CountRange(sid, "r", "a", 0, kDomain);
    warm_cli.Close();
    warm_srv.Stop();
  }

  const size_t fds_before = OpenFdCount();

  HolixServer server(db);
  server.Start();
  const uint16_t port = server.port();

  // --- Phase 1: every connection open at once --------------------------
  // kConns sockets held concurrently across kWorkers threads; each runs
  // one query so the server proves it can *serve*, not just accept, at
  // this width.
  {
    std::atomic<uint64_t> checksum{0};
    std::atomic<size_t> failures{0};
    std::vector<std::thread> workers;
    for (size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        const size_t lo = w * kConns / kWorkers;
        const size_t hi = (w + 1) * kConns / kWorkers;
        std::vector<HolixClient> clients(hi - lo);
        std::vector<uint64_t> sids(hi - lo);
        uint64_t local = 0;
        try {
          for (size_t i = 0; i < clients.size(); ++i) {
            clients[i].Connect("127.0.0.1", port);
            sids[i] = clients[i].OpenSession();
          }
          for (size_t i = 0; i < clients.size(); ++i) {
            const int64_t q = static_cast<int64_t>((lo + i) % 97) *
                              (kDomain / 97);
            local += clients[i].CountRange(sids[i], "r", "a", q,
                                           q + kDomain / 8);
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
        checksum.fetch_add(local);
      });
    }
    for (auto& t : workers) t.join();
    EXPECT_EQ(failures.load(), 0u);

    // Oracle from one in-process session.
    Session oracle = db.OpenSession();
    uint64_t expect = 0;
    for (size_t i = 0; i < kConns; ++i) {
      const int64_t q = static_cast<int64_t>(i % 97) * (kDomain / 97);
      expect += oracle.CountRange("r", "a", q, q + kDomain / 8);
    }
    EXPECT_EQ(checksum.load(), expect);
    EXPECT_GE(server.TotalConnections(), kConns);
  }

  // --- Phase 2: connect/close churn with abrupt RSTs --------------------
  // Rapid short-lived connections; every 5th dies by RST halfway through
  // a frame (half a valid CountRange header+payload on the wire).
  {
    CountRangeReq half;
    half.session_id = 1;
    half.table = "r";
    half.column = "a";
    half.low = KeyScalar::I64(0);
    half.high = KeyScalar::I64(kDomain);
    const std::vector<uint8_t> hello_frame = EncodeMessage(1, Hello{});
    const std::vector<uint8_t> half_frame = EncodeMessage(2, half);

    std::atomic<size_t> failures{0};
    std::vector<std::thread> workers;
    for (size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        const size_t n = kConns / kWorkers;
        for (size_t i = 0; i < n; ++i) {
          if ((w + i) % 5 == 0) {
            AbruptConn raw(port);
            if (!raw.ok()) {
              failures.fetch_add(1);
              continue;
            }
            raw.Send(hello_frame.data(), hello_frame.size());
            raw.Send(half_frame.data(), half_frame.size() / 2);
            raw.Reset();
            continue;
          }
          try {
            HolixClient c;
            c.Connect("127.0.0.1", port);
            const uint64_t sid = c.OpenSession();
            (void)c.CountRange(sid, "r", "a", 0, kDomain / 4);
          } catch (const std::exception&) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    EXPECT_EQ(failures.load(), 0u);
  }

  // --- Phase 3: pipelined queries racing inserts ------------------------
  // Readers pipeline full-domain counts while writers insert; every
  // response must be a valid count in [base, base + total_inserts].
  const size_t kInsertsPerWriter = 50;
  const size_t kWriters = 2;
  {
    std::atomic<size_t> failures{0};
    std::vector<std::thread> threads;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        try {
          HolixClient c;
          c.Connect("127.0.0.1", port);
          const uint64_t sid = c.OpenSession();
          for (size_t i = 0; i < kInsertsPerWriter; ++i) {
            c.Insert(sid, "r", "a",
                     static_cast<int64_t>((w * kInsertsPerWriter + i) %
                                          kDomain));
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      });
    }
    const uint64_t max_count = base_count + kWriters * kInsertsPerWriter;
    for (size_t rdr = 0; rdr < 4; ++rdr) {
      threads.emplace_back([&] {
        try {
          HolixClient c;
          c.Connect("127.0.0.1", port);
          const uint64_t sid = c.OpenSession();
          std::vector<uint64_t> ids;
          for (int i = 0; i < 40; ++i) {
            ids.push_back(c.SendCountRange(sid, "r", "a", 0, kDomain));
          }
          for (uint64_t id : ids) {
            const uint64_t n = c.AwaitCount(id);
            if (n < base_count || n > max_count) failures.fetch_add(1);
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0u);

    Session oracle = db.OpenSession();
    EXPECT_EQ(oracle.CountRange("r", "a", 0, kDomain), max_count);
  }

  server.Stop();

  // --- No leaks ----------------------------------------------------------
  // Every socket, epoll fd and eventfd Start() created is closed; client
  // fds released as the clients above went out of scope. TIME_WAIT etc.
  // hold no fds, so the count returns to the baseline exactly.
  const size_t fds_after = OpenFdCount();
  EXPECT_EQ(fds_after, fds_before);
}

}  // namespace
}  // namespace holix::net
