/// Loopback tests of the network service layer: lifecycle, handshake
/// version enforcement, malformed-stream handling, error frames that keep
/// the connection alive, concurrent socket clients whose mixed
/// read/insert results checksum-match an in-process session run, pipelined
/// out-of-order completion, and clean shutdown draining in-flight queries.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "test_support.h"
#include "workload/workload.h"

namespace holix::net {
namespace {

constexpr int64_t kDomain = 1 << 20;

DatabaseOptions SmallDbOptions() {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  opts.user_threads = 2;
  opts.total_cores = 4;
  return opts;
}

/// A raw loopback socket for protocol-violation tests (HolixClient refuses
/// to misbehave, so these speak bytes directly).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::vector<uint8_t>& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads frames until one arrives (EXPECT-fails on close/garbage).
  Frame ReadFrame() {
    std::vector<uint8_t> acc;
    uint8_t chunk[4096];
    for (;;) {
      Frame f;
      size_t consumed = 0;
      std::string error;
      if (TryDecodeFrame(acc.data(), acc.size(), &f, &consumed, &error) ==
          DecodeStatus::kFrame) {
        return f;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      EXPECT_GT(n, 0) << "connection closed before a frame arrived";
      if (n <= 0) return {};
      acc.insert(acc.end(), chunk, chunk + n);
    }
  }

  /// True when the server closed the connection (EOF) within ~2s.
  bool WaitForClose() {
    uint8_t buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  int fd() const { return fd_; }

  /// Abruptly resets the connection: SO_LINGER 0 turns close() into RST,
  /// the rudest disconnect a peer can deliver.
  void Reset() {
    linger lg{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

TEST(Server, StartStopLifecycle) {
  Database db(SmallDbOptions());
  db.LoadColumn("r", "a", test::MakeUniform(1000, kDomain, 1));
  HolixServer server(db);
  EXPECT_FALSE(server.running());
  server.Start();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);  // ephemeral bind resolved
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
  // Restartable after a stop.
  server.Start();
  EXPECT_TRUE(server.running());
  server.Stop();
}

TEST(Server, SyncQueriesMatchInProcessSession) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(50000, kDomain, 2);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);
  server.Start();

  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  Session inproc = db.OpenSession();
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(kDomain / 4));
    ASSERT_EQ(client.CountRange(sid, "r", "a", lo, hi),
              inproc.CountRange("r", "a", lo, hi))
        << "query " << i;
  }
  EXPECT_EQ(client.SumRange(sid, "r", "a", 100, 90000),
            inproc.SumRange("r", "a", 100, 90000));
  const auto rowids = client.SelectRowIds(sid, "r", "a", 100, 9000);
  EXPECT_EQ(rowids.size(), inproc.SelectRowIds(
                               inproc.Handle("r", "a"), 100, 9000).size());
  client.CloseSession(sid);
  client.Close();
  server.Stop();
}

TEST(Server, ProjectSumAndUpdatesOverTheWire) {
  Database db(SmallDbOptions());
  const auto a = test::MakeUniform(20000, kDomain, 4);
  const auto b = test::MakeUniform(20000, kDomain, 5);
  db.LoadColumn("r", "a", a);
  db.LoadColumn("r", "b", b);
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  int64_t naive = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= 100 && a[i] < 90000) naive += b[i];
  }
  EXPECT_EQ(client.ProjectSum(sid, "r", "a", "b", 100, 90000), naive);

  // Insert outside the base domain, read it back, delete it.
  const int64_t band = int64_t{1} << 21;
  EXPECT_EQ(client.CountRange(sid, "r", "a", band, band + 10), 0u);
  client.Insert(sid, "r", "a", band + 5);
  EXPECT_EQ(client.CountRange(sid, "r", "a", band, band + 10), 1u);
  EXPECT_TRUE(client.Delete(sid, "r", "a", band + 5));
  EXPECT_FALSE(client.Delete(sid, "r", "a", band + 5));
  EXPECT_EQ(client.CountRange(sid, "r", "a", band, band + 10), 0u);
  server.Stop();
}

TEST(Server, DoubleColumnTypedScalarsOverTheWire) {
  // A double attribute served over loopback: f64 bounds select exactly,
  // the sum comes back as a genuine double scalar, and the NaN/-0.0/+inf
  // keys behave like the in-process facade.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Database db(SmallDbOptions());
  const std::vector<double> prices =
      GenerateUniformDoubleColumn(20000, kDomain, 6);
  db.LoadColumn<double>("r", "price", prices);
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  Session inproc = db.OpenSession();
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    const double lo = static_cast<double>(rng.Below(kDomain)) + 0.25;
    const double hi = lo + 1.0 + static_cast<double>(rng.Below(kDomain / 4));
    ASSERT_EQ(client.CountRangeF64(sid, "r", "price", lo, hi),
              inproc.CountRangeF64("r", "price", lo, hi))
        << "query " << i;
  }
  // The sum travels as an f64 scalar and matches in-process bit-for-bit
  // (same engine, same physical order).
  const KeyScalar wire_sum = client.SumRangeScalar(
      sid, "r", "price", KeyScalar::F64(100.5), KeyScalar::F64(90000.5));
  ASSERT_TRUE(wire_sum.is_f64());
  EXPECT_EQ(wire_sum.d, inproc.SumRangeF64("r", "price", 100.5, 90000.5));

  // Special keys over the wire: insert NaN and +inf, count them through
  // the closed upgrade at the NaN key, then delete them.
  client.InsertF64(sid, "r", "price", nan);
  client.InsertF64(sid, "r", "price", kInf);
  EXPECT_EQ(client.CountRangeF64(sid, "r", "price", kInf, nan), 2u);
  EXPECT_EQ(client.CountRangeF64(sid, "r", "price", nan, nan), 1u);
  EXPECT_TRUE(client.DeleteF64(sid, "r", "price", nan));
  EXPECT_TRUE(client.DeleteF64(sid, "r", "price", kInf));
  EXPECT_EQ(client.CountRangeF64(sid, "r", "price", kInf, nan), 0u);

  // int64 bounds against the double column clamp exactly too.
  EXPECT_EQ(client.CountRange(sid, "r", "price", 100, 90000),
            inproc.CountRange("r", "price", 100, 90000));
  server.Stop();
}

TEST(Server, VersionMismatchRejectedWithErrorFrame) {
  Database db(SmallDbOptions());
  db.LoadColumn("r", "a", test::MakeUniform(1000, kDomain, 6));
  HolixServer server(db);
  server.Start();

  RawConn raw(server.port());
  Hello hello;
  hello.version = kProtocolVersion + 1;
  raw.Send(EncodeMessage(1, hello));
  const Frame f = raw.ReadFrame();
  ASSERT_EQ(f.type, MsgType::kError);
  ErrorMsg err;
  ASSERT_TRUE(DecodeMessage(f, &err));
  EXPECT_EQ(err.code, ErrorCode::kVersionMismatch);
  EXPECT_TRUE(raw.WaitForClose());
  server.Stop();
}

TEST(Server, BadMagicRejected) {
  Database db(SmallDbOptions());
  db.LoadColumn("r", "a", test::MakeUniform(1000, kDomain, 7));
  HolixServer server(db);
  server.Start();
  RawConn raw(server.port());
  Hello hello;
  hello.magic = 0x12345678;
  raw.Send(EncodeMessage(1, hello));
  const Frame f = raw.ReadFrame();
  ASSERT_EQ(f.type, MsgType::kError);
  EXPECT_TRUE(raw.WaitForClose());
  server.Stop();
}

TEST(Server, GarbageStreamClosesConnection) {
  Database db(SmallDbOptions());
  db.LoadColumn("r", "a", test::MakeUniform(1000, kDomain, 8));
  HolixServer server(db);
  server.Start();
  RawConn raw(server.port());
  // An impossible payload length followed by noise.
  std::vector<uint8_t> garbage(64, 0xFF);
  raw.Send(garbage);
  const Frame f = raw.ReadFrame();
  ASSERT_EQ(f.type, MsgType::kError);
  ErrorMsg err;
  ASSERT_TRUE(DecodeMessage(f, &err));
  EXPECT_EQ(err.code, ErrorCode::kMalformedFrame);
  EXPECT_TRUE(raw.WaitForClose());
  server.Stop();
}

TEST(Server, QueryErrorsKeepTheConnectionAlive) {
  Database db(SmallDbOptions());
  db.LoadColumn("r", "a", test::MakeUniform(10000, kDomain, 9));
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();
  // Unknown column -> error frame, connection stays usable.
  EXPECT_THROW(client.CountRange(sid, "r", "nope", 0, 10),
               std::runtime_error);
  // Unknown session -> error frame, connection stays usable.
  EXPECT_THROW(client.CountRange(sid + 999, "r", "a", 0, 10),
               std::runtime_error);
  EXPECT_EQ(client.CountRange(sid, "r", "a", 0, kDomain), 10000u);
  server.Stop();
}

TEST(Server, SessionCapRejectsExcessOpens) {
  Database db(SmallDbOptions());
  db.LoadColumn("r", "a", test::MakeUniform(1000, kDomain, 15));
  ServerOptions opts;
  opts.max_sessions_per_connection = 2;
  HolixServer server(db, opts);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t s1 = client.OpenSession();
  client.OpenSession();
  EXPECT_THROW(client.OpenSession(), std::runtime_error);  // cap reached
  // Closing one frees a slot; the connection stays healthy throughout.
  client.CloseSession(s1);
  const uint64_t s3 = client.OpenSession();
  EXPECT_EQ(client.CountRange(s3, "r", "a", 0, kDomain), 1000u);
  server.Stop();
}

TEST(Server, PipelinedRequestsCompleteOutOfOrderById) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(30000, kDomain, 10);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  Session inproc = db.OpenSession();
  std::vector<uint64_t> ids;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  Rng rng(11);
  for (int i = 0; i < 16; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(kDomain / 4));
    ranges.emplace_back(lo, hi);
    ids.push_back(client.SendCountRange(sid, "r", "a", lo, hi));
  }
  // Await in reverse order: responses must match by id, not arrival.
  for (size_t i = ids.size(); i-- > 0;) {
    EXPECT_EQ(client.AwaitCount(ids[i]),
              inproc.CountRange("r", "a", ranges[i].first, ranges[i].second))
        << "request " << i;
  }
  EXPECT_EQ(client.StashedResponses(), 0u);
  server.Stop();
}

/// A multi-predicate Q6-shaped ExecuteQuery over loopback must be
/// bit-equal to the same QuerySpec executed in-process: counts, the f64
/// sum carrier, and the sorted rowid set.
TEST(Server, MultiPredicateExecuteQueryBitEqualToInProcess) {
  Database db(SmallDbOptions());
  const auto a = test::MakeUniform(40000, kDomain, 20);
  const auto b = test::MakeUniform(40000, kDomain, 21);
  std::vector<double> d(40000);
  {
    Rng rng(22);
    for (auto& x : d) x = static_cast<double>(rng.Below(kDomain)) * 0.5;
  }
  db.LoadColumn("r", "a", a);
  db.LoadColumn("r", "b", b);
  db.LoadColumn<double>("r", "d", d);
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  Session inproc = db.OpenSession();
  Rng rng(23);
  for (int i = 0; i < 12; ++i) {
    const int64_t a_lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t a_hi = a_lo + 1 + static_cast<int64_t>(rng.Below(kDomain));
    const int64_t b_hi = 1 + static_cast<int64_t>(rng.Below(kDomain));
    const double d_lo = static_cast<double>(rng.Below(kDomain)) * 0.25;
    const double d_hi = d_lo + static_cast<double>(rng.Below(kDomain));

    const ExecuteQueryResult wire = client.ExecuteQuery(
        sid, "r",
        {{"a", KeyScalar::I64(a_lo), KeyScalar::I64(a_hi)},
         {"b", KeyScalar::I64(0), KeyScalar::I64(b_hi)},
         {"d", KeyScalar::F64(d_lo), KeyScalar::F64(d_hi)}},
        {{0, ""}, {1, "d"}, {2, ""}});

    QuerySpec spec;
    spec.Where(inproc.Handle("r", "a"), a_lo, a_hi)
        .Where(inproc.Handle("r", "b"), int64_t{0}, b_hi)
        .Where(inproc.Handle("r", "d"), d_lo, d_hi)
        .Count()
        .Sum(inproc.Handle("r", "d"))
        .RowIds();
    const QueryResult local = inproc.Execute(spec);

    ASSERT_EQ(wire.values.size(), 3u);
    EXPECT_TRUE(wire.values[0] == local.values[0]) << "query " << i;
    // KeyScalar equality is bit-exact on the f64 carrier.
    EXPECT_TRUE(wire.values[1] == local.values[1]) << "query " << i;
    ASSERT_EQ(wire.rowids.size(), local.rowids.size());
    for (size_t j = 0; j < wire.rowids.size(); ++j) {
      ASSERT_EQ(wire.rowids[j], local.rowids[j]) << "query " << i;
    }
  }
  client.CloseSession(sid);
  client.Close();
  server.Stop();
}

/// Pipelined ExecuteQuery frames: several multi-predicate queries on the
/// wire at once, awaited out of order, each bit-equal to in-process.
TEST(Server, PipelinedExecuteQueryCompletesOutOfOrder) {
  Database db(SmallDbOptions());
  const auto a = test::MakeUniform(30000, kDomain, 24);
  const auto b = test::MakeUniform(30000, kDomain, 25);
  db.LoadColumn("r", "a", a);
  db.LoadColumn("r", "b", b);
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  Session inproc = db.OpenSession();
  std::vector<uint64_t> ids;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  Rng rng(26);
  for (int i = 0; i < 12; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(kDomain / 2));
    ranges.emplace_back(lo, hi);
    ids.push_back(client.SendExecuteQuery(
        sid, "r",
        {{"a", KeyScalar::I64(lo), KeyScalar::I64(hi)},
         {"b", KeyScalar::I64(100), KeyScalar::I64(kDomain)}},
        {{0, ""}, {1, "b"}}));
  }
  for (size_t i = ids.size(); i-- > 0;) {
    const ExecuteQueryResult wire = client.AwaitExecuteQuery(ids[i]);
    QuerySpec spec;
    spec.Where(inproc.Handle("r", "a"), ranges[i].first, ranges[i].second)
        .Where(inproc.Handle("r", "b"), int64_t{100}, int64_t{kDomain})
        .Count()
        .Sum(inproc.Handle("r", "b"));
    const QueryResult local = inproc.Execute(spec);
    ASSERT_EQ(wire.values.size(), 2u);
    EXPECT_TRUE(wire.values[0] == local.values[0]) << "request " << i;
    EXPECT_TRUE(wire.values[1] == local.values[1]) << "request " << i;
  }
  EXPECT_EQ(client.StashedResponses(), 0u);
  client.CloseSession(sid);
  client.Close();
  server.Stop();
}

/// The §5.8 experiment shape over sockets: concurrent clients running
/// mixed reads and inserts; every count must match an in-process session
/// oracle computed on the same base data, and the insert bands must be
/// fully visible afterwards.
TEST(Server, ConcurrentClientsMixedReadsAndInsertsChecksumMatch) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(50000, kDomain, 12);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);
  server.Start();
  const uint16_t port = server.port();

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 40;
  constexpr int64_t kBandBase = int64_t{1} << 21;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HolixClient client;
      client.Connect("127.0.0.1", port);
      const uint64_t sid = client.OpenSession();
      Rng rng(100 + c);
      for (int i = 0; i < kOpsPerClient; ++i) {
        client.Insert(sid, "r", "a", kBandBase + c * 1000 + i);
        const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
        const int64_t hi =
            lo + 1 + static_cast<int64_t>(rng.Below(kDomain / 8));
        // Base-domain reads are unaffected by the out-of-band inserts.
        if (client.CountRange(sid, "r", "a", lo, hi) !=
            test::NaiveCount(data, lo, hi)) {
          failures.fetch_add(1);
        }
      }
      client.CloseSession(sid);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every socket insert is visible both over the wire and in-process.
  HolixClient verify;
  verify.Connect("127.0.0.1", port);
  const uint64_t vsid = verify.OpenSession();
  Session inproc = db.OpenSession();
  for (int c = 0; c < kClients; ++c) {
    const int64_t lo = kBandBase + c * 1000;
    EXPECT_EQ(verify.CountRange(vsid, "r", "a", lo, lo + kOpsPerClient),
              static_cast<size_t>(kOpsPerClient))
        << "client " << c;
    EXPECT_EQ(inproc.CountRange("r", "a", lo, lo + kOpsPerClient),
              static_cast<size_t>(kOpsPerClient));
  }
  EXPECT_GE(server.TotalConnections(), static_cast<uint64_t>(kClients + 1));
  EXPECT_GE(server.TotalRequests(),
            static_cast<uint64_t>(kClients * kOpsPerClient * 2));
  server.Stop();
}

TEST(Server, StopDrainsInFlightPipelinedQueries) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(200000, kDomain, 13);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  // Fill the wire with pipelined queries, then stop the server while they
  // are in flight: every dispatched query must still answer (drain), and
  // the checksum must match the oracle.
  std::vector<uint64_t> ids;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  Rng rng(14);
  for (int i = 0; i < 24; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(kDomain));
    ranges.emplace_back(lo, hi);
    ids.push_back(client.SendCountRange(sid, "r", "a", lo, hi));
  }
  // Anchor: the first response proves the server is mid-stream before the
  // concurrent Stop() begins.
  EXPECT_EQ(client.AwaitCount(ids[0]),
            test::NaiveCount(data, ranges[0].first, ranges[0].second));
  std::thread stopper([&] { server.Stop(); });
  size_t answered = 1;
  for (size_t i = 1; i < ids.size(); ++i) {
    try {
      EXPECT_EQ(client.AwaitCount(ids[i]),
                test::NaiveCount(data, ranges[i].first, ranges[i].second))
          << "request " << i;
      ++answered;
    } catch (const std::runtime_error&) {
      // The connection may close between two responses once the server
      // finished draining; everything dispatched before that answered.
      break;
    }
  }
  stopper.join();
  EXPECT_FALSE(server.running());
  EXPECT_GT(answered, 0u);
}

/// The decoder must reassemble frames from arbitrarily fragmented reads:
/// dribble an entire handshake + query exchange one byte per send().
TEST(Server, OneBytePerSendReassemblesFrames) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(5000, kDomain, 31);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);
  server.Start();
  RawConn raw(server.port());

  auto dribble = [&](const std::vector<uint8_t>& bytes) {
    for (uint8_t b : bytes) raw.Send({b});
  };

  dribble(EncodeMessage(1, Hello{}));
  EXPECT_EQ(raw.ReadFrame().type, MsgType::kHelloAck);

  dribble(EncodeMessage(2, OpenSessionReq{}));
  const Frame ack = raw.ReadFrame();
  ASSERT_EQ(ack.type, MsgType::kOpenSessionAck);
  OpenSessionAck open;
  ASSERT_TRUE(DecodeMessage(ack, &open));

  CountRangeReq req;
  req.session_id = open.session_id;
  req.table = "r";
  req.column = "a";
  req.low = KeyScalar::I64(0);
  req.high = KeyScalar::I64(kDomain);
  dribble(EncodeMessage(3, req));
  const Frame f = raw.ReadFrame();
  ASSERT_EQ(f.type, MsgType::kCountResult);
  CountResult res;
  ASSERT_TRUE(DecodeMessage(f, &res));
  EXPECT_EQ(res.count, data.size());
  server.Stop();
}

/// A peer that resets (RST) mid-frame — header sent, payload never
/// arriving — must not wedge the server or leak its connection slot.
TEST(Server, ResetMidFrameLeavesServerHealthy) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(5000, kDomain, 32);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);
  server.Start();

  {
    RawConn raw(server.port());
    raw.Send(EncodeMessage(1, Hello{}));
    EXPECT_EQ(raw.ReadFrame().type, MsgType::kHelloAck);
    // First half of a valid CountRange frame, then RST.
    CountRangeReq req;
    req.session_id = 1;
    req.table = "r";
    req.column = "a";
    req.low = KeyScalar::I64(0);
    req.high = KeyScalar::I64(kDomain);
    const std::vector<uint8_t> frame = EncodeMessage(2, req);
    raw.Send({frame.begin(), frame.begin() + frame.size() / 2});
    raw.Reset();
  }
  {
    // RST before the handshake even starts.
    RawConn raw(server.port());
    const std::vector<uint8_t> hello = EncodeMessage(1, Hello{});
    raw.Send({hello.begin(), hello.begin() + 3});
    raw.Reset();
  }

  // The server keeps serving new clients correctly afterwards.
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();
  EXPECT_EQ(client.CountRange(sid, "r", "a", 0, kDomain), data.size());
  server.Stop();
}

/// Shared scans answer concurrent same-column counts bit-equal to the
/// engine, and actually coalesce under pipelining.
TEST(Server, SharedScanCoalescesConcurrentCountsBitEqual) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(100000, kDomain, 33);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);  // shared_scans defaults on
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  Rng rng(34);
  std::vector<uint64_t> ids;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (int i = 0; i < 64; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Below(kDomain));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(kDomain / 2));
    ranges.emplace_back(lo, hi);
    ids.push_back(client.SendCountRange(sid, "r", "a", lo, hi));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(client.AwaitCount(ids[i]),
              test::NaiveCount(data, ranges[i].first, ranges[i].second))
        << "request " << i;
  }
  // Every count went through the coalescer; pipelined arrivals batched.
  EXPECT_EQ(server.SharedScanRequests(), 64u);
  EXPECT_GE(server.SharedScanBatches(), 1u);
  EXPECT_LE(server.SharedScanBatches(), 64u);
  server.Stop();
}

/// The wire stats plane is the in-process stats plane: on a quiesced
/// engine, GetStats over loopback decodes to exactly the snapshot
/// Database::MetricsSnapshot() returns — every counter, gauge, histogram
/// bucket and trace-ring entry.
TEST(Server, GetStatsMatchesInProcessSnapshot) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(50000, kDomain, 35);
  db.LoadColumn("r", "a", data);
  HolixServer server(db);
  server.Start();
  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();

  // Generate telemetry: synchronous queries, fully drained before the
  // snapshot (each call returns only after its response frame arrived).
  uint64_t total = 0;
  for (int i = 0; i < 16; ++i) {
    total += client.CountRange(sid, "r", "a", i * 1000, i * 1000 + 50000);
  }
  EXPECT_GT(total, 0u);

  const obs::MetricsSnapshot wire = client.GetStats();
  const obs::MetricsSnapshot local = db.MetricsSnapshot();
  EXPECT_EQ(wire, local);

  // The snapshot is live telemetry, not zeros.
  EXPECT_GT(wire.CounterValue("holix_queries_total{mode=\"adaptive\"}"), 0u);
  EXPECT_GT(wire.CounterValue("holix_scan_bytes_total"), 0u);
  EXPECT_GT(wire.CounterValue("holix_server_requests_total"), 0u);
  EXPECT_GT(wire.GaugeValue("holix_index_pieces"), 0.0);
  EXPECT_FALSE(wire.traces.empty());
  // GetStats itself is not a counted request: back-to-back snapshots with
  // no queries in between agree on the request total.
  const obs::MetricsSnapshot again = client.GetStats();
  EXPECT_EQ(again.CounterValue("holix_server_requests_total"),
            wire.CounterValue("holix_server_requests_total"));
  server.Stop();
}

/// The plain-HTTP metrics endpoint serves Prometheus text on the same
/// event loop, and non-/metrics paths get a 404.
TEST(Server, HttpMetricsEndpointServesPrometheusText) {
  Database db(SmallDbOptions());
  const auto data = test::MakeUniform(20000, kDomain, 36);
  db.LoadColumn("r", "a", data);
  ServerOptions opts;
  opts.metrics_http = true;  // ephemeral metrics port
  HolixServer server(db, opts);
  server.Start();
  ASSERT_NE(server.metrics_port(), 0);

  HolixClient client;
  client.Connect("127.0.0.1", server.port());
  const uint64_t sid = client.OpenSession();
  client.CountRange(sid, "r", "a", 0, kDomain / 2);

  auto http_get = [&](const std::string& path) {
    RawConn raw(server.metrics_port());
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    raw.Send({req.begin(), req.end()});
    std::string resp;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(raw.fd(), buf, sizeof(buf), 0);
      if (n <= 0) break;  // server closes after the response
      resp.append(buf, static_cast<size_t>(n));
    }
    return resp;
  };

  const std::string resp = http_get("/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("holix_queries_total"), std::string::npos);
  EXPECT_NE(resp.find("holix_scan_bytes_total"), std::string::npos);
  EXPECT_NE(resp.find("_bucket{le="), std::string::npos);
  EXPECT_NE(http_get("/nope").find("HTTP/1.0 404"), std::string::npos);

  // Scrapes are not protocol connections or requests.
  EXPECT_EQ(server.TotalConnections(), 1u);
  server.Stop();
}

}  // namespace
}  // namespace holix::net
