/// Tests for stochastic cracking (PVSDC [21,44]): correctness, the extra
/// random cracks it injects, and its robustness advantage on sequential
/// workloads (the pattern plain cracking handles worst).

#include <gtest/gtest.h>

#include "cracking/cracker_column.h"
#include "test_support.h"
#include "util/rng.h"

namespace holix {
namespace {

using test::MakeUniform;
using test::NaiveCount;

CrackConfig StochasticConfig(Rng* rng, size_t min_piece = 1 << 12) {
  CrackConfig cfg;
  cfg.stochastic = true;
  cfg.rng = rng;
  cfg.stochastic_min_piece = min_piece;
  return cfg;
}

TEST(Stochastic, ResultsMatchNaive) {
  const int64_t domain = 1 << 20;
  const auto base = MakeUniform(100000, domain, 1);
  CrackerColumn<int64_t> col("a", base);
  Rng pivot_rng(2), query_rng(3);
  const CrackConfig cfg = StochasticConfig(&pivot_rng);
  for (int i = 0; i < 100; ++i) {
    const int64_t lo = static_cast<int64_t>(query_rng.Below(domain));
    const int64_t w = 1 + static_cast<int64_t>(query_rng.Below(domain / 16));
    ASSERT_EQ(col.SelectRange(lo, lo + w, cfg).size(),
              NaiveCount(base, lo, lo + w));
  }
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(Stochastic, InjectsExtraCracksOnBigPieces) {
  const int64_t domain = 1 << 20;
  const auto base = MakeUniform(200000, domain, 4);
  CrackerColumn<int64_t> plain("p", base);
  CrackerColumn<int64_t> stoch("s", base);
  Rng pivot_rng(5);
  const CrackConfig cfg = StochasticConfig(&pivot_rng, 1 << 10);
  // One identical query each: stochastic must create more pieces because
  // it pre-cracks the target piece at random pivots.
  plain.SelectRange(100, 200);
  stoch.SelectRange(100, 200, cfg);
  EXPECT_GT(stoch.NumPieces(), plain.NumPieces());
  EXPECT_TRUE(stoch.CheckInvariants());
}

TEST(Stochastic, SequentialWorkloadDataAccessAdvantage) {
  // Under a sequential (monotone) workload, plain cracking re-scans the
  // big unindexed upper piece on every query; stochastic cracking's
  // random pre-cracks bound that piece's size. Compare total data
  // touched via piece sizes at the query bound rather than wall time
  // (timing is too noisy for a unit test).
  const int64_t domain = 1 << 20;
  const auto base = MakeUniform(300000, domain, 6);
  CrackerColumn<int64_t> plain("p", base);
  CrackerColumn<int64_t> stoch("s", base);
  Rng pivot_rng(7);
  const CrackConfig cfg = StochasticConfig(&pivot_rng, 1 << 12);
  const int kQueries = 50;
  for (int i = 1; i <= kQueries; ++i) {
    const int64_t lo = domain * i / (kQueries + 2);
    const int64_t hi = lo + domain / 1000;
    ASSERT_EQ(plain.SelectRange(lo, hi).size(),
              stoch.SelectRange(lo, hi, cfg).size());
  }
  // Stochastic should have built a finer index overall.
  EXPECT_GT(stoch.NumPieces(), plain.NumPieces());
  EXPECT_TRUE(plain.CheckInvariants());
  EXPECT_TRUE(stoch.CheckInvariants());
}

TEST(Stochastic, SmallPiecesSkipPreCracking) {
  const auto base = MakeUniform(1000, 1000, 8);
  CrackerColumn<int64_t> col("a", base);
  Rng pivot_rng(9);
  // min piece larger than the column: behaves like plain cracking.
  const CrackConfig cfg = StochasticConfig(&pivot_rng, 1 << 20);
  col.SelectRange(100, 200, cfg);
  EXPECT_LE(col.NumPieces(), 3u);
}

TEST(Stochastic, WithoutRngFallsBackToPlain) {
  const auto base = MakeUniform(10000, 1000, 10);
  CrackerColumn<int64_t> col("a", base);
  CrackConfig cfg;
  cfg.stochastic = true;  // but rng == nullptr
  col.SelectRange(100, 200, cfg);
  EXPECT_LE(col.NumPieces(), 3u);
  EXPECT_TRUE(col.CheckInvariants());
}

}  // namespace
}  // namespace holix
