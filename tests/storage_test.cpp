/// Tests for the storage substrate: columns, tables, catalogs and their
/// error handling.

#include <gtest/gtest.h>

#include <stdexcept>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/table.h"
#include "storage/types.h"

namespace holix {
namespace {

TEST(Types, SizesAndNames) {
  EXPECT_EQ(ValueTypeSize(ValueType::kInt32), 4u);
  EXPECT_EQ(ValueTypeSize(ValueType::kInt64), 8u);
  EXPECT_EQ(ValueTypeSize(ValueType::kDouble), 8u);
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_EQ(ValueTypeOf<int32_t>::value, ValueType::kInt32);
  EXPECT_EQ(ValueTypeOf<double>::value, ValueType::kDouble);
}

TEST(Column, BasicAccess) {
  Column<int64_t> col("a", {1, 2, 3});
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.SizeBytes(), 24u);
  EXPECT_EQ(col[1], 2);
  col.Append(4);
  EXPECT_EQ(col.size(), 4u);
  EXPECT_EQ(col[3], 4);
  EXPECT_EQ(col.name(), "a");
  EXPECT_EQ(col.type(), ValueType::kInt64);
}

TEST(Table, AddAndGetColumns) {
  Table t("r");
  t.AddColumn<int64_t>("a", {1, 2, 3});
  t.AddColumn<int64_t>("b", {4, 5, 6});
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("z"));
  EXPECT_EQ(t.GetColumn<int64_t>("b")[0], 4);
  EXPECT_EQ(t.SizeBytes(), 48u);
  const auto names = t.ColumnNames();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(Table, LengthMismatchThrows) {
  Table t("r");
  t.AddColumn<int64_t>("a", {1, 2, 3});
  EXPECT_THROW(t.AddColumn<int64_t>("b", {1, 2}), std::invalid_argument);
}

TEST(Table, DuplicateColumnThrows) {
  Table t("r");
  t.AddColumn<int64_t>("a", {1});
  EXPECT_THROW(t.AddColumn<int64_t>("a", {2}), std::invalid_argument);
}

TEST(Table, MissingColumnThrows) {
  Table t("r");
  EXPECT_THROW(t.GetColumn<int64_t>("nope"), std::out_of_range);
}

TEST(Table, WrongTypeThrows) {
  Table t("r");
  t.AddColumn<int64_t>("a", {1});
  EXPECT_THROW(t.GetColumn<int32_t>("a"), std::out_of_range);
}

TEST(Table, MixedTypes) {
  Table t("r");
  t.AddColumn<int64_t>("a", {1, 2});
  t.AddColumn<double>("d", {0.5, 1.5});
  EXPECT_EQ(t.GetColumn<double>("d")[1], 1.5);
  EXPECT_EQ(t.column(1).type(), ValueType::kDouble);
}

TEST(Catalog, CreateGetDrop) {
  Catalog c;
  EXPECT_FALSE(c.HasTable("r"));
  Table& t = c.CreateTable("r");
  t.AddColumn<int64_t>("a", {1});
  EXPECT_TRUE(c.HasTable("r"));
  EXPECT_EQ(&c.CreateTable("r"), &t);  // idempotent
  EXPECT_EQ(c.GetTable("r").num_rows(), 1u);
  EXPECT_THROW(c.GetTable("q"), std::out_of_range);
  c.DropTable("r");
  EXPECT_FALSE(c.HasTable("r"));
  c.DropTable("r");  // no-op
}

TEST(Catalog, TableNames) {
  Catalog c;
  c.CreateTable("x");
  c.CreateTable("y");
  auto names = c.TableNames();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"x", "y"}));
}

TEST(Catalog, ConstAccess) {
  Catalog c;
  c.CreateTable("r").AddColumn<int64_t>("a", {7});
  const Catalog& cc = c;
  EXPECT_EQ(cc.GetTable("r").GetColumn<int64_t>("a")[0], 7);
}

}  // namespace
}  // namespace holix
