/// Table 1 of the paper is a qualitative comparison; these tests pin the
/// implemented systems to the properties that table claims, so the
/// table1_qualitative bench prints facts the code actually has.

#include <gtest/gtest.h>

#include <thread>

#include "engine/database.h"
#include "workload/workload.h"

namespace holix {
namespace {

constexpr size_t kRows = 200000;
constexpr int64_t kDomain = 1 << 20;

TEST(Table1, OfflineMaterializesFullIndexUpFront) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kOffline;
  opts.user_threads = 4;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(kRows, kDomain, 1));
  // "Statistical analysis before query processing": the entire physical
  // design is decided (and paid for) before/at the first query.
  db.PrepareOfflineIndexes();
  // Full materialization: a sorted copy of every column exists, so a point
  // query needs no reorganization and no scan.
  const size_t c1 = db.CountRange("r", "a", 100, 200);
  const size_t c2 = db.CountRange("r", "a", 100, 200);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(db.TotalIndexPieces(), 0u);  // no partial (cracked) indices
}

TEST(Table1, AdaptiveOnlyRefinesDuringQueries) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(kRows, kDomain, 2));
  db.CountRange("r", "a", 100, 5000);
  const size_t pieces_after_query = db.TotalIndexPieces();
  EXPECT_GT(pieces_after_query, 1u);  // partial index built by the query
  // "Exploitation of idle resources": none — waiting changes nothing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(db.TotalIndexPieces(), pieces_after_query);
}

TEST(Table1, HolisticRefinesDuringIdleResources) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 4;
  opts.holistic.monitor_interval_seconds = 0.001;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(kRows, kDomain, 3));
  db.CountRange("r", "a", 100, 5000);
  const size_t pieces_after_query = db.TotalIndexPieces();
  // Idle resources are exploited: pieces grow without further queries.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_GT(db.TotalIndexPieces(), pieces_after_query);
}

TEST(Table1, HolisticIndexingIsPartial) {
  // Partial materialization: holistic indices are cracked columns, not
  // fully sorted copies — piece counts stay far below row counts.
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 2;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(kRows, kDomain, 4));
  db.CountRange("r", "a", 100, 5000);
  EXPECT_LT(db.TotalIndexPieces(), kRows / 10);
}

TEST(Table1, HolisticKeepsStatisticsAboutWorkload) {
  DatabaseOptions opts;
  opts.mode = ExecMode::kHolistic;
  opts.user_threads = 1;
  opts.total_cores = 2;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(kRows, kDomain, 5));
  db.CountRange("r", "a", 100, 5000);
  db.CountRange("r", "a", 100, 5000);
  const auto idx = db.holistic()->store().Find("r.a");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->stats().accesses.load(), 2u);
  EXPECT_EQ(idx->stats().exact_hits.load(), 1u);
}

TEST(Table1, UpdatesAreCheapForAdaptiveAndHolistic) {
  // "Updates cost: low" — an insert is O(1) pending-queue work, merged
  // incrementally later, never a full index rebuild.
  DatabaseOptions opts;
  opts.mode = ExecMode::kAdaptive;
  Database db(opts);
  db.LoadColumn("r", "a", GenerateUniformColumn(kRows, kDomain, 6));
  db.CountRange("r", "a", 100, 5000);
  const size_t pieces = db.TotalIndexPieces();
  for (int i = 0; i < 100; ++i) db.Insert("r", "a", i * 37 % kDomain);
  EXPECT_EQ(db.TotalIndexPieces(), pieces);  // nothing rebuilt eagerly
}

}  // namespace
}  // namespace holix
