/// \file test_support.h
/// \brief Shared deterministic test substrate.
///
/// Three building blocks keep the suites hermetic on any machine,
/// including single-core CI containers:
///  * seeded data generators (no global RNG state, identical data on
///    every run),
///  * a temp-directory fixture that creates and removes a private
///    scratch directory per test,
///  * a RunOneCycle-based engine driver so holistic-engine tests pump
///    tuning cycles synchronously instead of depending on wall-clock
///    CPU load, plus a bounded progress wait for the few tests that do
///    exercise the real tuning thread.

#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cracking/cracker_column.h"
#include "holistic/adaptive_index.h"
#include "holistic/holistic_engine.h"
#include "util/rng.h"

namespace holix {
namespace test {

// --- Seeded data generators ----------------------------------------------

/// Uniform values in [0, domain), reproducible from \p seed.
inline std::vector<int64_t> MakeUniform(size_t n, int64_t domain,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = static_cast<int64_t>(rng.Below(domain));
  return v;
}

/// Reference count of values in [lo, hi) — the oracle cracked selects
/// are checked against.
inline size_t NaiveCount(const std::vector<int64_t>& v, int64_t lo,
                         int64_t hi) {
  size_t c = 0;
  for (int64_t x : v) c += (x >= lo && x < hi) ? 1 : 0;
  return c;
}

/// n copies of the same key (latch/boundary stress data).
inline std::vector<int64_t> MakeAllEqual(size_t n, int64_t key) {
  return std::vector<int64_t>(n, key);
}

/// The ascending sequence 0, 1, ..., n-1.
inline std::vector<int64_t> MakeSequential(size_t n) {
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<int64_t>(i);
  return v;
}

/// A cracker-backed adaptive index over fresh uniform data.
inline std::shared_ptr<CrackerAdaptiveIndex<int64_t>> MakeIndex(
    const std::string& name, size_t rows = 10000, uint64_t seed = 1,
    int64_t domain = 1 << 20) {
  auto col = std::make_shared<CrackerColumn<int64_t>>(
      name, MakeUniform(rows, domain, seed));
  return std::make_shared<CrackerAdaptiveIndex<int64_t>>(col);
}

// --- Temp-dir fixture -----------------------------------------------------

/// Creates a private scratch directory before each test and removes it
/// (recursively) afterwards.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    // Parameterized suites/tests carry '/' in their names; flatten so the
    // scratch dir stays a single component that TearDown removes fully.
    std::string tag = std::string("holix_") + info->test_suite_name() + "_" +
                      info->name();
    for (char& c : tag) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != '-') {
        c = '_';
      }
    }
    dir_ = std::filesystem::temp_directory_path() / tag;
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// The scratch directory for this test.
  const std::filesystem::path& temp_dir() const { return dir_; }

  /// A path inside the scratch directory.
  std::filesystem::path TempPath(const std::string& name) const {
    return dir_ / name;
  }

 private:
  std::filesystem::path dir_;
};

// --- Deterministic engine driving ----------------------------------------

/// Pumps RunOneCycle until \p done returns true, up to \p max_cycles.
/// All refinement happens synchronously on the calling thread, so the
/// outcome depends only on seeds and configuration — never on how busy
/// the host machine is. \return true when \p done held before the budget
/// ran out.
inline bool DriveUntil(HolisticEngine& engine,
                       const std::function<bool()>& done,
                       size_t max_cycles = 1000) {
  for (size_t i = 0; i < max_cycles; ++i) {
    if (done()) return true;
    engine.RunOneCycle();
  }
  return done();
}

/// Bounded wait for tests that exercise the real tuning thread: polls
/// \p done until it holds or \p max_wait elapses. Use only to observe
/// progress of an engine that is Start()ed; prefer DriveUntil for
/// everything else.
inline bool WaitForProgress(
    const std::function<bool()>& done,
    std::chrono::milliseconds max_wait = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + max_wait;
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace test
}  // namespace holix
