/// Tests for ThreadPool and ParallelSort: task execution, per-call
/// ParallelFor completion (including concurrent callers), and sorting
/// correctness across sizes and thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel_sort.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace holix {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  pool.ParallelFor(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPool, ConcurrentParallelForCallers) {
  // Two client threads issue ParallelFor on the same pool simultaneously;
  // each must see exactly its own iterations complete (Fig. 17 relies on
  // this).
  ThreadPool pool(4);
  std::atomic<int> a{0}, b{0};
  std::thread t1([&] {
    for (int r = 0; r < 20; ++r) {
      pool.ParallelFor(0, 100, [&](size_t) { a.fetch_add(1); });
    }
  });
  std::thread t2([&] {
    for (int r = 0; r < 20; ++r) {
      pool.ParallelFor(0, 100, [&](size_t) { b.fetch_add(1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 2000);
  EXPECT_EQ(b.load(), 2000);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> n{0};
  pool.Submit([&] { n.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  // Exception barrier: a throwing body on a worker must surface on the
  // caller (previously it std::terminate'd the process), the pool must stay
  // usable, and remaining iterations are best-effort skipped.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 700) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // Pool unaffected: a subsequent clean ParallelFor completes fully.
  std::atomic<int> ok{0};
  pool.ParallelFor(0, 100, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPool, ParallelForRethrowsFromCallerShard) {
  // Shard 0 runs on the calling thread; its exception must also wait for
  // the submitted shards before propagating (no use-after-free of body).
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 1000,
                                [&](size_t i) {
                                  if (i == 0) throw std::runtime_error("c");
                                }),
               std::runtime_error);
  pool.WaitIdle();
}

TEST(ThreadPool, ParallelForMorselsCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  const MorselRunStats stats = pool.ParallelForMorsels(
      0, 5000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  EXPECT_EQ(stats.morsels, 5000u);
}

TEST(ThreadPool, ParallelForMorselsStealsFromStragglers) {
  // Slot 0's block is made artificially slow; thieves must drain it (the
  // run would otherwise take ~first-block-serial time and the steal counter
  // would stay 0).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  const MorselRunStats stats =
      pool.ParallelForMorsels(0, 64, [&](size_t i) {
        if (i < 16) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        hits[i].fetch_add(1);
      });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  // Stealing is timing-dependent on a loaded machine, so only assert on
  // multi-core hosts where a thief is essentially guaranteed idle time.
  if (std::thread::hardware_concurrency() >= 4) {
    EXPECT_GT(stats.steals, 0u);
  }
}

TEST(ThreadPool, ParallelForMorselsHonorsMaxParticipants) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.ParallelForMorsels(
      0, 256,
      [&](size_t) {
        std::lock_guard<std::mutex> lk(mu);
        seen.insert(std::this_thread::get_id());
      },
      /*max_participants=*/2);
  EXPECT_LE(seen.size(), 2u);
}

TEST(ThreadPool, ParallelForMorselsRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelForMorsels(0, 500,
                                       [&](size_t i) {
                                         if (i == 250)
                                           throw std::runtime_error("m");
                                       }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.ParallelForMorsels(0, 64, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 64);
}

TEST(ThreadPool, ParallelForMorselsEmptyAndSerial) {
  ThreadPool pool(4);
  int calls = 0;
  const MorselRunStats none =
      pool.ParallelForMorsels(5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(none.morsels, 0u);
  const MorselRunStats one = pool.ParallelForMorsels(
      9, 10, [&](size_t i) { EXPECT_EQ(i, 9u); ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(one.steals, 0u);
}

TEST(ThreadPool, PinnedPoolStillExecutes) {
  // Pinning is best effort; the observable contract is that a pinned pool
  // behaves like a normal one.
  ThreadPoolOptions opts;
  opts.pin_threads = true;
  ThreadPool pool(4, opts);
  std::atomic<int> n{0};
  pool.ParallelFor(0, 1000, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1000);
}

class ParallelSortTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ParallelSortTest, SortsCorrectly) {
  const auto [n, threads] = GetParam();
  ThreadPool pool(threads);
  Rng rng(n + threads);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = static_cast<int64_t>(rng.Below(1u << 30));
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  ParallelSort(v, pool);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 100, 16384, 100000,
                                         1 << 18),
                       ::testing::Values(1, 2, 4, 8)));

TEST(ParallelSort, CustomComparator) {
  ThreadPool pool(4);
  std::vector<int64_t> v(100000);
  Rng rng(3);
  for (auto& x : v) x = static_cast<int64_t>(rng.Below(1000));
  ParallelSort(v, pool, std::greater<int64_t>());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int64_t>()));
}

TEST(ParallelSort, PairsSortStably) {
  ThreadPool pool(3);
  struct P {
    int64_t k;
    int64_t v;
  };
  std::vector<P> pairs(200000);
  Rng rng(5);
  for (size_t i = 0; i < pairs.size(); ++i) {
    pairs[i] = {static_cast<int64_t>(rng.Below(1u << 20)),
                static_cast<int64_t>(i)};
  }
  ParallelSort(pairs.data(), pairs.size(), pool,
               [](const P& a, const P& b) {
                 return a.k < b.k || (a.k == b.k && a.v < b.v);
               });
  for (size_t i = 1; i < pairs.size(); ++i) {
    ASSERT_TRUE(pairs[i - 1].k < pairs[i].k ||
                (pairs[i - 1].k == pairs[i].k && pairs[i - 1].v < pairs[i].v));
  }
}

}  // namespace
}  // namespace holix
