/// TPC-H tests: data-generation sanity (domains, correlations) and result
/// equivalence of Q1/Q6/Q12 across the scan / presorted / cracked /
/// holistic-refined executors. Money aggregates are real doubles since the
/// typed-core refactor: integer aggregates compare exactly, double sums
/// through ApproxEqual (row visit order perturbs the last ulps).

#include <gtest/gtest.h>

#include <cmath>

#include "holistic/holistic_engine.h"
#include "tpch/tpch_data.h"
#include "tpch/tpch_queries.h"

namespace holix {
namespace {

const TpchData& SmallData() {
  static const TpchData data = TpchData::Generate(0.01, 42);
  return data;
}

TEST(TpchData, RowCountsScale) {
  const auto& d = SmallData();
  EXPECT_EQ(d.NumOrders(), 15000u);
  EXPECT_GT(d.NumLineitems(), 3 * d.NumOrders());
  EXPECT_LT(d.NumLineitems(), 8 * d.NumOrders());
}

TEST(TpchData, ColumnsAligned) {
  const auto& d = SmallData();
  const size_t n = d.NumLineitems();
  EXPECT_EQ(d.l_quantity.size(), n);
  EXPECT_EQ(d.l_extendedprice.size(), n);
  EXPECT_EQ(d.l_discount.size(), n);
  EXPECT_EQ(d.l_shipdate.size(), n);
  EXPECT_EQ(d.l_receiptdate.size(), n);
  EXPECT_EQ(d.l_shipmode.size(), n);
}

TEST(TpchData, ValueDomains) {
  const auto& d = SmallData();
  for (size_t i = 0; i < d.NumLineitems(); i += 17) {
    ASSERT_GE(d.l_quantity[i], 1);
    ASSERT_LE(d.l_quantity[i], 50);
    ASSERT_GE(d.l_discount[i], 0.0);
    ASSERT_LE(d.l_discount[i], 0.10);
    // Discounts are whole-percent fractions; prices cent-granular dollars.
    ASSERT_EQ(d.l_discount[i], std::round(d.l_discount[i] * 100.0) / 100.0);
    ASSERT_GT(d.l_extendedprice[i], 0.0);
    ASSERT_EQ(d.l_extendedprice[i],
              std::round(d.l_extendedprice[i] * 100.0) / 100.0);
    ASSERT_GE(d.l_tax[i], 0);
    ASSERT_LE(d.l_tax[i], 8);
    ASSERT_GE(d.l_returnflag[i], 0);
    ASSERT_LE(d.l_returnflag[i], 2);
    ASSERT_GE(d.l_shipmode[i], 0);
    ASSERT_LT(d.l_shipmode[i], kTpchNumShipModes);
    ASSERT_GE(d.l_shipdate[i], 0);
    ASSERT_LE(d.l_shipdate[i], kTpchDateMax);
  }
}

TEST(TpchData, DateCorrelations) {
  const auto& d = SmallData();
  for (size_t i = 0; i < d.NumLineitems(); i += 13) {
    const int64_t orderdate = d.o_orderdate[d.l_orderkey[i] - 1];
    ASSERT_GT(d.l_shipdate[i], orderdate);
    // receiptdate strictly after shipdate (unless clamped at range end).
    if (d.l_receiptdate[i] < kTpchDateMax) {
      ASSERT_GT(d.l_receiptdate[i], d.l_shipdate[i]);
    }
  }
}

TEST(TpchData, OrderkeysDenseAndValid) {
  const auto& d = SmallData();
  for (size_t i = 0; i < d.NumLineitems(); i += 11) {
    ASSERT_GE(d.l_orderkey[i], 1);
    ASSERT_LE(d.l_orderkey[i], static_cast<int64_t>(d.NumOrders()));
  }
}

TEST(TpchQueries, Q1AllExecutorsAgree) {
  const auto& d = SmallData();
  TpchScanExecutor scan(d);
  TpchPresortedExecutor sorted(d);
  TpchCrackedExecutor cracked(d);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    const Q1Params p = RandomQ1Params(rng);
    const Q1Result a = scan.Q1(p);
    EXPECT_TRUE(ApproxEqual(a, sorted.Q1(p))) << "variation " << i;
    EXPECT_TRUE(ApproxEqual(a, cracked.Q1(p))) << "variation " << i;
  }
}

TEST(TpchQueries, Q6AllExecutorsAgree) {
  const auto& d = SmallData();
  TpchScanExecutor scan(d);
  TpchPresortedExecutor sorted(d);
  TpchCrackedExecutor cracked(d);
  Rng rng(2);
  for (int i = 0; i < 12; ++i) {
    const Q6Params p = RandomQ6Params(rng);
    const Q6Result a = scan.Q6(p);
    EXPECT_TRUE(ApproxEqual(a, sorted.Q6(p))) << "variation " << i;
    EXPECT_TRUE(ApproxEqual(a, cracked.Q6(p))) << "variation " << i;
  }
}

TEST(TpchQueries, Q12AllExecutorsAgree) {
  const auto& d = SmallData();
  TpchScanExecutor scan(d);
  TpchPresortedExecutor sorted(d);
  TpchCrackedExecutor cracked(d);
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const Q12Params p = RandomQ12Params(rng);
    const Q12Result a = scan.Q12(p);
    EXPECT_EQ(a, sorted.Q12(p)) << "variation " << i;
    EXPECT_EQ(a, cracked.Q12(p)) << "variation " << i;
  }
}

TEST(TpchQueries, Q1SelectsNonEmptyGroups) {
  const auto& d = SmallData();
  TpchScanExecutor scan(d);
  const Q1Result r = scan.Q1(Q1Params{});
  int64_t total = 0;
  for (size_t g = 0; g < Q1Result::kGroups; ++g) total += r.count[g];
  EXPECT_GT(total, 0);
  // Charges must be >= disc prices (tax is non-negative).
  for (size_t g = 0; g < Q1Result::kGroups; ++g) {
    EXPECT_GE(r.sum_charge[g], r.sum_disc_price[g] * (1.0 - 1e-12));
  }
}

TEST(TpchQueries, CrackedResultsStableUnderHolisticWorkers) {
  const auto& d = SmallData();
  TpchScanExecutor scan(d);
  TpchCrackedExecutor cracked(d);
  HolisticConfig cfg;
  cfg.max_workers = 4;
  cfg.refinements_per_worker = 16;
  cfg.monitor_interval_seconds = 0.0005;
  HolisticEngine engine(cfg, std::make_unique<SlotCpuMonitor>(8, 0.0005));
  engine.store().Register(cracked.ShipdateIndex(), ConfigKind::kActual);
  engine.store().Register(cracked.ReceiptdateIndex(), ConfigKind::kActual);
  engine.Start();
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const Q6Params p6 = RandomQ6Params(rng);
    ASSERT_TRUE(ApproxEqual(scan.Q6(p6), cracked.Q6(p6)))
        << "Q6 variation " << i;
    const Q12Params p12 = RandomQ12Params(rng);
    ASSERT_EQ(scan.Q12(p12), cracked.Q12(p12)) << "Q12 variation " << i;
  }
  engine.Stop();
  EXPECT_GT(engine.TotalWorkerCracks(), 0u);
}

TEST(TpchQueries, RandomParamsWithinSpec) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Q6Params p6 = RandomQ6Params(rng);
    EXPECT_GE(p6.discount_lo, 0.01);
    // Width is exactly two whole-percent steps.
    EXPECT_EQ(std::llround((p6.discount_hi - p6.discount_lo) * 100.0), 2);
    EXPECT_LE(p6.date_lo + 365, kTpchDateMax);
    const Q12Params p12 = RandomQ12Params(rng);
    EXPECT_NE(p12.mode1, p12.mode2);
  }
}

}  // namespace
}  // namespace holix
