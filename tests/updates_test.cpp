/// Tests for pending updates and the Ripple merge ([28], §4.2 "Updates"):
/// inserts/deletes park in pending queues, merge on demand without breaking
/// any piece boundary, and holistic workers merge as a side effect.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "cracking/cracker_column.h"
#include "storage/pending_updates.h"
#include "test_support.h"
#include "util/rng.h"

namespace holix {
namespace {

using test::MakeUniform;

TEST(PendingUpdates, TakeInsertsFiltersByRange) {
  PendingUpdates<int64_t> p;
  p.AddInsert(5, 100);
  p.AddInsert(15, 101);
  p.AddInsert(25, 102);
  EXPECT_EQ(p.PendingInserts(), 3u);
  auto taken = p.TakeInsertsInRange(10, 20);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].first, 15);
  EXPECT_EQ(taken[0].second, 101u);
  EXPECT_EQ(p.PendingInserts(), 2u);
}

TEST(PendingUpdates, TakeDeletesFiltersByRange) {
  PendingUpdates<int64_t> p;
  p.AddDelete(5, 1);
  p.AddDelete(50, 2);
  auto taken = p.TakeDeletesInRange(0, 10);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(p.PendingDeletes(), 1u);
}

TEST(RippleMerge, InsertIntoUncrackedColumn) {
  CrackerColumn<int64_t> col("a", MakeUniform(1000, 1000, 1));
  col.pending().AddInsert(123, 5000);
  col.MergePendingInRange(0, 1000);
  EXPECT_EQ(col.size(), 1001u);
  EXPECT_TRUE(col.CheckInvariants());
  EXPECT_EQ(col.stats().merged_inserts.load(), 1u);
}

TEST(RippleMerge, InsertPreservesBoundariesAndCounts) {
  const auto base = MakeUniform(20000, 10000, 2);
  CrackerColumn<int64_t> col("a", base);
  // Crack into several pieces first.
  col.SelectRange(1000, 2000);
  col.SelectRange(4000, 7000);
  col.SelectRange(9000, 9500);
  const size_t pieces_before = col.NumPieces();

  // Insert values across the whole domain.
  Rng rng(3);
  std::vector<int64_t> inserted;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Below(10000));
    inserted.push_back(v);
    col.pending().AddInsert(v, 100000 + i);
  }
  col.MergePendingInRange(0, 10000);
  EXPECT_EQ(col.size(), base.size() + inserted.size());
  EXPECT_EQ(col.NumPieces(), pieces_before);  // merging adds no boundaries
  EXPECT_TRUE(col.CheckInvariants());

  // Counts must reflect base + inserted values.
  auto count_in = [&](int64_t lo, int64_t hi) {
    size_t c = 0;
    for (int64_t v : base) c += (v >= lo && v < hi) ? 1 : 0;
    for (int64_t v : inserted) c += (v >= lo && v < hi) ? 1 : 0;
    return c;
  };
  EXPECT_EQ(col.SelectRange(1000, 2000).size(), count_in(1000, 2000));
  EXPECT_EQ(col.SelectRange(0, 10000).size(), count_in(0, 10000));
}

TEST(RippleMerge, QueryTriggersMergeOfCoveredInsertsOnly) {
  const auto base = MakeUniform(5000, 1000, 4);
  CrackerColumn<int64_t> col("a", base);
  col.pending().AddInsert(100, 9001);
  col.pending().AddInsert(900, 9002);
  // Query covering only the low insert.
  col.SelectRange(50, 200);
  EXPECT_EQ(col.stats().merged_inserts.load(), 1u);
  EXPECT_EQ(col.pending().PendingInserts(), 1u);
  // Now a query covering the rest.
  col.SelectRange(800, 1000);
  EXPECT_EQ(col.stats().merged_inserts.load(), 2u);
  EXPECT_EQ(col.pending().PendingInserts(), 0u);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(RippleMerge, DeleteRemovesExactlyOneRow) {
  std::vector<int64_t> base = {5, 3, 8, 3, 9, 1};
  CrackerColumn<int64_t> col("a", base);
  col.SelectRange(3, 9);  // crack a bit
  // Delete the value 3 with rowid 1 (the first 3).
  col.pending().AddDelete(3, 1);
  col.MergePendingInRange(0, 100);
  EXPECT_EQ(col.size(), 5u);
  EXPECT_EQ(col.stats().merged_deletes.load(), 1u);
  EXPECT_EQ(col.SelectRange(3, 4).size(), 1u);  // one 3 remains
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(RippleMerge, DeleteOfAbsentRowIsIgnored) {
  CrackerColumn<int64_t> col("a", MakeUniform(1000, 100, 5));
  col.pending().AddDelete(50, 999999);  // rowid never existed
  col.MergePendingInRange(0, 100);
  EXPECT_EQ(col.size(), 1000u);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(RippleMerge, InsertThenDeleteRoundTrip) {
  const auto base = MakeUniform(3000, 500, 6);
  CrackerColumn<int64_t> col("a", base);
  col.SelectRange(100, 400);
  const size_t count_before = col.SelectRange(200, 210).size();
  col.pending().AddInsert(205, 7777);
  col.MergePendingInRange(200, 210);
  EXPECT_EQ(col.SelectRange(200, 210).size(), count_before + 1);
  col.pending().AddDelete(205, 7777);
  col.MergePendingInRange(200, 210);
  EXPECT_EQ(col.SelectRange(200, 210).size(), count_before);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(RippleMerge, WorkerRefinementMergesPendingUpdates) {
  const auto base = MakeUniform(50000, 10000, 7);
  CrackerColumn<int64_t> col("a", base);
  for (int i = 0; i < 50; ++i) {
    col.pending().AddInsert(i * 200 + 7, 200000 + i);
  }
  // Worker refinements at random pivots must merge the pending inserts of
  // the pieces they touch (§4.2: workers bring indices up to date).
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    col.TryRefineAt(static_cast<int64_t>(rng.Below(10000)));
  }
  EXPECT_GT(col.stats().merged_inserts.load(), 0u);
  EXPECT_TRUE(col.CheckInvariants());
  // Everything still countable: total = base + still-pending + merged.
  const size_t merged = col.stats().merged_inserts.load();
  EXPECT_EQ(col.size(), base.size() + merged);
}

TEST(RippleMerge, ManyPiecesManyInserts) {
  const auto base = MakeUniform(30000, 1 << 16, 9);
  CrackerColumn<int64_t> col("a", base);
  Rng rng(10);
  for (int i = 0; i < 300; ++i) {
    col.TryRefineAt(static_cast<int64_t>(rng.Below(1 << 16)));
  }
  const size_t pieces = col.NumPieces();
  for (int i = 0; i < 1000; ++i) {
    col.pending().AddInsert(static_cast<int64_t>(rng.Below(1 << 16)),
                            500000 + i);
  }
  col.MergePendingInRange(0, 1 << 16);
  EXPECT_EQ(col.size(), base.size() + 1000);
  EXPECT_EQ(col.NumPieces(), pieces);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(RippleMerge, PendingInsertsIntoEmptyColumnBecomeVisible) {
  // A column loaded with zero rows must still surface pending inserts:
  // the select path merges before its emptiness check.
  CrackerColumn<int64_t> col("a", std::vector<int64_t>{});
  col.pending().AddInsert(5, 0);
  col.pending().AddInsert(9, 1);
  const PositionRange r = col.SelectRange(0, 100);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_TRUE(col.CheckInvariants());
}

TEST(RippleMerge, ConcurrentWorkerMergeNeverLosesRows) {
  // Regression: MergePendingInRange used to drain the pending queues
  // before taking the exclusive column latch, so a query racing with a
  // worker-side merge could see empty queues AND a column that did not
  // yet hold the drained rows — and undercount. The drain now happens
  // under the latch; the final count must always balance.
  const int64_t domain = 1 << 16;
  const size_t rows = 50000;
  CrackerColumn<int64_t> col("a", MakeUniform(rows, domain, 11));
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    Rng rng(21);
    while (!stop.load(std::memory_order_relaxed)) {
      // Successful refinements merge pending updates around the piece,
      // exactly like a holistic worker (TryRefineAt side-job).
      col.TryRefineAt(static_cast<int64_t>(rng.Below(domain)));
    }
  });
  Rng rng(31);
  size_t expected = rows;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 10; ++i) {
      const int64_t v = static_cast<int64_t>(rng.Below(domain));
      col.pending().AddInsert(v, static_cast<RowId>(rows + expected));
      ++expected;
    }
    const int64_t lo = static_cast<int64_t>(rng.Below(domain));
    col.SelectRange(lo, std::min<int64_t>(domain, lo + domain / 64));
  }
  stop.store(true);
  worker.join();
  const PositionRange full = col.SelectRange(0, domain);
  EXPECT_EQ(full.size(), expected);
  EXPECT_EQ(col.size(), expected);
  EXPECT_TRUE(col.CheckInvariants());
}

}  // namespace
}  // namespace holix
