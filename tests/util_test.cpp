/// Tests for the utility substrate: RNG determinism and uniformity, Zipf
/// skew, latches, sample statistics, cache-size override, env knobs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "util/cache_info.h"
#include "util/env.h"
#include "util/latch.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace holix {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.Below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(KeyTraits, IntegerRanksPreserveOrderAcrossTheWholeDomain) {
  using KT = KeyTraits<int64_t>;
  const int64_t samples[] = {std::numeric_limits<int64_t>::min(), -5, -1, 0,
                             1, 42, std::numeric_limits<int64_t>::max()};
  for (size_t i = 0; i + 1 < std::size(samples); ++i) {
    EXPECT_LT(KT::ToRank(samples[i]), KT::ToRank(samples[i + 1]));
    EXPECT_EQ(KT::FromRank(KT::ToRank(samples[i])), samples[i]);
  }
  EXPECT_EQ(KT::Next(41), 42);
  EXPECT_TRUE(KT::IsHighest(std::numeric_limits<int64_t>::max()));
}

TEST(KeyTraits, DoubleTotalOrderPinsSpecialKeys) {
  using KT = KeyTraits<double>;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double dmax = std::numeric_limits<double>::max();

  // -inf < finite < +inf < NaN; -0.0 == +0.0; every NaN is one key.
  EXPECT_TRUE(KT::Less(-kInf, -dmax));
  EXPECT_TRUE(KT::Less(-1.0, -0.0));
  EXPECT_FALSE(KT::Less(-0.0, 0.0));
  EXPECT_TRUE(KT::Eq(-0.0, 0.0));
  EXPECT_EQ(KT::ToRank(-0.0), KT::ToRank(0.0));
  EXPECT_TRUE(KT::Less(dmax, kInf));
  EXPECT_TRUE(KT::Less(kInf, nan));
  EXPECT_TRUE(KT::Eq(nan, std::nan("0x7")));
  EXPECT_TRUE(KT::IsHighest(nan));
  EXPECT_EQ(KT::Lowest(), -kInf);

  // Rank roundtrips and order preservation over representative keys.
  const double keys[] = {-kInf, -dmax, -1.5, -0.0, 1e-300, 2.5, dmax, kInf};
  for (size_t i = 0; i + 1 < std::size(keys); ++i) {
    EXPECT_LT(KT::ToRank(keys[i]), KT::ToRank(keys[i + 1])) << keys[i];
    EXPECT_EQ(KT::FromRank(KT::ToRank(keys[i])), KT::Canonical(keys[i]));
  }

  // Successors: next ulp for finite keys, then +inf, then the NaN key.
  EXPECT_EQ(KT::Next(1.0), std::nextafter(1.0, kInf));
  EXPECT_EQ(KT::Next(dmax), kInf);
  EXPECT_TRUE(std::isnan(KT::Next(kInf)));
}

TEST(Rng, SamplePivotBetweenIntegerRanges) {
  Rng rng(11);
  // The whole-of-int64 domain must not overflow; results lie in (lo, hi].
  for (int i = 0; i < 200; ++i) {
    const int64_t p = SamplePivotBetween<int64_t>(
        rng, std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max());
    ASSERT_GT(p, std::numeric_limits<int64_t>::min());
  }
  // A unit-width range always yields hi (the only member of (lo, hi]).
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(SamplePivotBetween<int32_t>(rng, 5, 6), 6);
  }
  // Mean of a symmetric range is near the midpoint (edge-bias check).
  double sum = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(SamplePivotBetween<int64_t>(rng, -1000, 1000));
  }
  EXPECT_NEAR(sum / n, 0.0, 50.0);
}

TEST(Rng, SamplePivotBetweenDoubleRanges) {
  using KT = KeyTraits<double>;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double dmax = std::numeric_limits<double>::max();
  Rng rng(12);

  // Value-space uniformity on [0, 1]: the mean sits near 0.5. (Rank-space
  // sampling would put half of all pivots below ~1e-154 — mean near 0 —
  // which is exactly the bias this checks against.)
  double sum = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double p = SamplePivotBetween<double>(rng, 0.0, 1.0);
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
    sum += p;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);

  // No collapse onto lo at the edges: adjacent representables always
  // yield hi, never lo.
  const double lo = 1.0;
  const double hi = std::nextafter(1.0, 2.0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(SamplePivotBetween<double>(rng, lo, hi), hi);
  }

  // The span -DBL_MAX..DBL_MAX overflows a naive (hi - lo); pivots must
  // stay finite and inside (lo, hi].
  for (int i = 0; i < 200; ++i) {
    const double p = SamplePivotBetween<double>(rng, -dmax, dmax);
    ASSERT_TRUE(KT::Less(-dmax, p));
    ASSERT_FALSE(KT::Less(dmax, p));
  }

  // Non-finite endpoints fall back to exact rank-space sampling.
  for (int i = 0; i < 100; ++i) {
    const double p = SamplePivotBetween<double>(rng, 0.0, kInf);
    ASSERT_TRUE(KT::Less(0.0, p));
    ASSERT_FALSE(KT::Less(kInf, p));
  }
  for (int i = 0; i < 100; ++i) {
    const double p =
        SamplePivotBetween<double>(rng, -kInf, KT::Highest());
    ASSERT_TRUE(KT::Less(-kInf, p));
  }
}

TEST(Zipf, Theta0IsUniformish) {
  ZipfGenerator z(10, 0.0);
  Rng rng(1);
  int counts[10] = {0};
  for (int i = 0; i < 50000; ++i) ++counts[z.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(Zipf, HighThetaConcentratesOnLowRanks) {
  ZipfGenerator z(10, 1.5);
  Rng rng(2);
  int counts[10] = {0};
  for (int i = 0; i < 50000; ++i) ++counts[z.Sample(rng)];
  EXPECT_GT(counts[0], counts[9] * 5);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(RwSpinLatch, ExclusiveWrite) {
  RwSpinLatch latch;
  latch.LockWrite();
  EXPECT_FALSE(latch.TryLockWrite());
  latch.UnlockWrite();
  EXPECT_TRUE(latch.TryLockWrite());
  latch.UnlockWrite();
}

TEST(RwSpinLatch, ReadersBlockWriters) {
  RwSpinLatch latch;
  latch.LockRead();
  latch.LockRead();  // shared: fine
  EXPECT_FALSE(latch.TryLockWrite());
  latch.UnlockRead();
  EXPECT_FALSE(latch.TryLockWrite());
  latch.UnlockRead();
  EXPECT_TRUE(latch.TryLockWrite());
  latch.UnlockWrite();
}

TEST(RwSpinLatch, CounterUnderContention) {
  RwSpinLatch latch;
  int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        WriteGuard g(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrements);
}

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_NEAR(s.Stddev(), 1.118, 0.001);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.01);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
}

TEST(SampleStats, EmptyIsSafe) {
  SampleStats s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.Stddev(), 0.0);
}

TEST(CacheInfo, DetectsPositiveSize) {
  OverrideL1DataCacheBytes(0);
  EXPECT_GT(L1DataCacheBytes(), 0u);
  EXPECT_GT(L1Elements(8), 0u);
}

TEST(CacheInfo, OverrideWorks) {
  OverrideL1DataCacheBytes(4096);
  EXPECT_EQ(L1DataCacheBytes(), 4096u);
  EXPECT_EQ(L1Elements(8), 512u);
  OverrideL1DataCacheBytes(0);
}

TEST(Env, DoubleAndIntParsing) {
  ::setenv("HOLIX_TEST_D", "2.5", 1);
  ::setenv("HOLIX_TEST_I", "77", 1);
  ::setenv("HOLIX_TEST_BAD", "xyz", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("HOLIX_TEST_D", 1.0), 2.5);
  EXPECT_EQ(EnvInt("HOLIX_TEST_I", 0), 77);
  EXPECT_DOUBLE_EQ(EnvDouble("HOLIX_TEST_BAD", 9.0), 9.0);
  EXPECT_DOUBLE_EQ(EnvDouble("HOLIX_TEST_UNSET_VAR", 3.0), 3.0);
  ::unsetenv("HOLIX_TEST_D");
  ::unsetenv("HOLIX_TEST_I");
  ::unsetenv("HOLIX_TEST_BAD");
}

TEST(Env, ScaledSizeRespectsScale) {
  ::setenv("HOLIX_SCALE", "0.5", 1);
  EXPECT_EQ(ScaledSize(1 << 20, 1), (1u << 20) / 2);
  ::setenv("HOLIX_SCALE", "0.000001", 1);
  EXPECT_EQ(ScaledSize(1 << 20, 4096), 4096u);  // floor applies
  ::unsetenv("HOLIX_SCALE");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedSeconds(), 0.015);
  EXPECT_GE(t.ElapsedMicros(), 15000);
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 0.015);
}

}  // namespace
}  // namespace holix
