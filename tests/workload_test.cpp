/// Tests for workload generation: pattern shapes (Fig. 10), attribute
/// skew, selectivity control, determinism, and update interleavings.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workload/workload.h"

namespace holix {
namespace {

WorkloadSpec BaseSpec(QueryPattern p) {
  WorkloadSpec s;
  s.num_queries = 2000;
  s.num_attributes = 10;
  s.domain = 1 << 30;
  s.pattern = p;
  s.selectivity = 0.001;
  s.seed = 77;
  return s;
}

TEST(Workload, Deterministic) {
  const auto a = GenerateWorkload(BaseSpec(QueryPattern::kRandom));
  const auto b = GenerateWorkload(BaseSpec(QueryPattern::kRandom));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].low, b[i].low);
    ASSERT_EQ(a[i].attr, b[i].attr);
  }
}

TEST(Workload, BoundsWithinDomain) {
  for (QueryPattern p :
       {QueryPattern::kRandom, QueryPattern::kSkewed, QueryPattern::kPeriodic,
        QueryPattern::kSequential, QueryPattern::kSkyServer}) {
    const auto spec = BaseSpec(p);
    for (const auto& q : GenerateWorkload(spec)) {
      ASSERT_GE(q.low, 0);
      ASSERT_LT(q.low, spec.domain);
      ASSERT_GT(q.high, q.low);
      ASSERT_LE(q.high, spec.domain);
      ASSERT_LT(q.attr, spec.num_attributes);
    }
  }
}

TEST(Workload, SelectivityControlsWidth) {
  auto spec = BaseSpec(QueryPattern::kRandom);
  spec.selectivity = 0.01;
  const int64_t expected = spec.domain / 100;
  for (const auto& q : GenerateWorkload(spec)) {
    ASSERT_LE(q.high - q.low, expected);
  }
}

TEST(Workload, RandomSelectivityWhenZero) {
  auto spec = BaseSpec(QueryPattern::kRandom);
  spec.selectivity = 0;
  int64_t max_width = 0;
  for (const auto& q : GenerateWorkload(spec)) {
    max_width = std::max(max_width, q.high - q.low);
  }
  EXPECT_GT(max_width, spec.domain / 10);  // random widths include big ones
}

TEST(Workload, SkewedPatternConcentratesHigh) {
  const auto queries = GenerateWorkload(BaseSpec(QueryPattern::kSkewed));
  for (const auto& q : queries) {
    ASSERT_GE(q.low, (int64_t{1} << 30) - (int64_t{1} << 30) / 5);
  }
}

TEST(Workload, SequentialPatternIsMonotone) {
  const auto queries = GenerateWorkload(BaseSpec(QueryPattern::kSequential));
  for (size_t i = 1; i < queries.size(); ++i) {
    ASSERT_LE(queries[i - 1].low, queries[i].low);
  }
}

TEST(Workload, PeriodicPatternRepeats) {
  auto spec = BaseSpec(QueryPattern::kPeriodic);
  const auto queries = GenerateWorkload(spec);
  const size_t period = spec.num_queries / 10;
  for (size_t i = 0; i + period < queries.size(); i += 37) {
    ASSERT_EQ(queries[i].low, queries[i + period].low);
  }
}

TEST(Workload, SkyServerDwellsInRegions) {
  const auto queries = GenerateWorkload(BaseSpec(QueryPattern::kSkyServer));
  // Consecutive queries should usually be near each other (dwell), but the
  // full trace must cover a wide portion of the domain (jumps).
  size_t near = 0;
  int64_t min_pos = queries[0].low, max_pos = queries[0].low;
  for (size_t i = 1; i < queries.size(); ++i) {
    if (std::abs(queries[i].low - queries[i - 1].low) <
        (int64_t{1} << 30) / 32) {
      ++near;
    }
    min_pos = std::min(min_pos, queries[i].low);
    max_pos = std::max(max_pos, queries[i].low);
  }
  EXPECT_GT(near, queries.size() * 3 / 4);          // mostly local
  EXPECT_GT(max_pos - min_pos, (int64_t{1} << 30) / 2);  // but wide overall
}

TEST(Workload, SkewedAttributesFollowZipf) {
  auto spec = BaseSpec(QueryPattern::kRandom);
  spec.skewed_attributes = true;
  spec.attribute_zipf_theta = 1.2;
  std::map<size_t, size_t> counts;
  for (const auto& q : GenerateWorkload(spec)) ++counts[q.attr];
  EXPECT_GT(counts[0], counts[9] * 2);
}

TEST(Workload, UniformColumnProperties) {
  const auto col = GenerateUniformColumn(100000, 1 << 20, 3);
  EXPECT_EQ(col.size(), 100000u);
  int64_t mn = col[0], mx = col[0];
  for (int64_t v : col) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1 << 20);
  }
  EXPECT_LT(mn, (1 << 20) / 100);        // covers the low end
  EXPECT_GT(mx, (1 << 20) * 99 / 100);   // and the high end
}

TEST(UpdateWorkload, HflvShape) {
  const auto ops = GenerateUpdateWorkload(
      UpdateScenario::kHighFrequencyLowVolume, 100, 1 << 20, 0.5, 9);
  size_t queries = 0, inserts = 0, idles = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case WorkloadOp::Kind::kQuery:
        ++queries;
        break;
      case WorkloadOp::Kind::kInsert:
        ++inserts;
        break;
      case WorkloadOp::Kind::kIdle:
        ++idles;
        break;
    }
  }
  EXPECT_EQ(queries, 100u);
  EXPECT_EQ(inserts, 100u);
  EXPECT_EQ(idles, 1u);
  // Batches of 10 inserts after every 10 queries.
  size_t run_queries = 0;
  for (const auto& op : ops) {
    if (op.kind == WorkloadOp::Kind::kQuery) ++run_queries;
    if (op.kind == WorkloadOp::Kind::kInsert) {
      ASSERT_EQ(run_queries % 10, 0u);
    }
  }
}

TEST(UpdateWorkload, LfhvBatchesAre100) {
  const auto ops = GenerateUpdateWorkload(
      UpdateScenario::kLowFrequencyHighVolume, 200, 1 << 20, 0, 10);
  // First insert appears only after 100 queries.
  size_t seen_queries = 0;
  for (const auto& op : ops) {
    if (op.kind == WorkloadOp::Kind::kQuery) ++seen_queries;
    if (op.kind == WorkloadOp::Kind::kInsert) {
      EXPECT_GE(seen_queries, 100u);
      break;
    }
  }
}

TEST(Workload, PatternNames) {
  EXPECT_STREQ(QueryPatternName(QueryPattern::kRandom), "Random");
  EXPECT_STREQ(QueryPatternName(QueryPattern::kSkyServer), "SkyServer");
}

}  // namespace
}  // namespace holix
