#!/usr/bin/env python3
"""Regression-gate fresh bench JSON against committed baselines.

Every figure bench writes `BENCH_<fig>.json` (via HOLIX_BENCH_JSON) with the
shape ReportTable::SaveJson emits:

    {"title": ..., "generated_unix": ..., "header": [...], "rows": [[...]]}

This tool joins a fresh run against the committed baseline in
`bench/results/` row-by-row (first column is the row key, e.g. the client
count) and cell-by-cell, and fails when any timing cell regressed beyond
the threshold ratio. Only timing cells are gated: the row-key column,
non-numeric cells (labels like "u1w1x2"), columns whose header marks them
as non-timing (e.g. "checksum"), and sub-5ms cells (pure noise at smoke
scale) are all skipped.

Each row is ADDITIONALLY gated on the sum of its timing cells: at smoke
scale a figure like fig17_socket can have every individual cell under the
5ms noise floor while the row's aggregate wall time is comfortably
measurable — per-cell skipping alone would leave such figures entirely
ungated (a regression could grow every cell 10x and still "pass"). The
aggregate comparison uses the same threshold and noise floor, so a row
whose total cost regresses fails even when no single cell does.

Usage:
    tools/bench_compare.py --baseline bench/results --fresh bench-json \
        --figs fig17,fig17_socket --threshold 2.5
    tools/bench_compare.py ... --update   # refresh the baselines instead

Exit status: 0 = no regression, 1 = regression or missing input.
"""

import argparse
import json
import os
import shutil
import sys

# Cells faster than this many seconds are noise at smoke scale; never gate
# on them.
MIN_GATED_SECONDS = 0.005

# Column headers that carry non-timing numerics (correctness probes, row
# labels, coalescing stats); gating them would flag intentional workload
# changes as "regressions".
NON_TIMING_HEADERS = ("checksum", "clients", "#attrs", "variation", "batch",
                      "match")


def is_timing_column(header, col):
    if col == 0:
        return False  # the row key
    name = (header[col] if col < len(header) else "").lower()
    return not any(tag in name for tag in NON_TIMING_HEADERS)


def parse_cell(text):
    """Returns the cell as float seconds, or None for labels/row keys."""
    try:
        return float(text)
    except (TypeError, ValueError):
        return None


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {row[0]: row for row in doc.get("rows", []) if row}
    return doc.get("header", []), rows


def compare_fig(fig, baseline_dir, fresh_dir, threshold):
    """Returns (checked_cells, list of problem strings) or None if a file
    is missing. A baseline row absent from the fresh run is a problem —
    a bench that crashed mid-run must not sail through the gate."""
    base_path = os.path.join(baseline_dir, f"BENCH_{fig}.json")
    fresh_path = os.path.join(fresh_dir, f"BENCH_{fig}.json")
    for path in (base_path, fresh_path):
        if not os.path.exists(path):
            print(f"bench_compare: missing {path}", file=sys.stderr)
            return None
    base_header, base_rows = load(base_path)
    fresh_header, fresh_rows = load(fresh_path)
    if base_header != fresh_header:
        print(f"bench_compare: {fig}: header changed "
              f"({base_header} -> {fresh_header}); re-baseline with --update",
              file=sys.stderr)
        return None

    checked = 0
    regressions = []
    for key, base_row in base_rows.items():
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            regressions.append(
                f"{fig}: baseline row '{key}' missing from the fresh run")
            continue
        base_sum = 0.0
        fresh_sum = 0.0
        summed = 0
        for col, (b_cell, f_cell) in enumerate(zip(base_row, fresh_row)):
            if not is_timing_column(base_header, col):
                continue
            b, f = parse_cell(b_cell), parse_cell(f_cell)
            if b is None or f is None:
                continue
            base_sum += b
            fresh_sum += f
            summed += 1
            if b < MIN_GATED_SECONDS and f < MIN_GATED_SECONDS:
                continue
            checked += 1
            floor = max(b, MIN_GATED_SECONDS)
            if f > floor * threshold:
                col_name = (base_header[col]
                            if col < len(base_header) else f"col{col}")
                regressions.append(
                    f"{fig} row '{key}' {col_name}: {b:.4f}s -> {f:.4f}s "
                    f"({f / floor:.2f}x > {threshold:.2f}x)")
        # Aggregate row gate: catches figures whose individual cells all
        # sit under the noise floor (see the module docstring).
        if summed > 0 and (base_sum >= MIN_GATED_SECONDS
                           or fresh_sum >= MIN_GATED_SECONDS):
            checked += 1
            floor = max(base_sum, MIN_GATED_SECONDS)
            if fresh_sum > floor * threshold:
                regressions.append(
                    f"{fig} row '{key}' aggregate: {base_sum:.4f}s -> "
                    f"{fresh_sum:.4f}s "
                    f"({fresh_sum / floor:.2f}x > {threshold:.2f}x)")
    return checked, regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/results",
                    help="directory with committed BENCH_*.json baselines")
    ap.add_argument("--fresh", required=True,
                    help="directory with the fresh run's BENCH_*.json")
    ap.add_argument("--figs", default="fig17,fig17_socket",
                    help="comma-separated figure slugs to gate")
    ap.add_argument("--threshold", type=float, default=2.5,
                    help="fail when fresh > baseline * threshold")
    ap.add_argument("--update", action="store_true",
                    help="copy the fresh JSON over the baselines and exit")
    args = ap.parse_args()

    figs = [f.strip() for f in args.figs.split(",") if f.strip()]
    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        for fig in figs:
            src = os.path.join(args.fresh, f"BENCH_{fig}.json")
            dst = os.path.join(args.baseline, f"BENCH_{fig}.json")
            shutil.copyfile(src, dst)
            print(f"bench_compare: baselined {dst}")
        return 0

    failed = False
    total_checked = 0
    for fig in figs:
        result = compare_fig(fig, args.baseline, args.fresh, args.threshold)
        if result is None:
            failed = True
            continue
        checked, regressions = result
        total_checked += checked
        if regressions:
            failed = True
            for r in regressions:
                print(f"REGRESSION: {r}", file=sys.stderr)
        else:
            print(f"bench_compare: {fig}: {checked} cells within "
                  f"{args.threshold:.2f}x of baseline")
    if total_checked == 0 and not failed:
        # An empty comparison is a broken gate, not a pass.
        print("bench_compare: nothing compared — empty rows or all cells "
              "sub-threshold; failing the gate", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
